//! Synthetic trace generation.
//!
//! New scenario families are a generator config away: a [`SynthConfig`]
//! crosses a **size law** (how big requests are) with a **temporal
//! shape** (when they arrive and who frees them) and expands, via a
//! seeded [`StdRng`], into a deterministic [`AllocTrace`]. The laws
//! follow the workload-diversity arguments of the PrIM benchmarking
//! line of work: PIM behaviour is highly shape-dependent, so allocator
//! evaluation needs fixed/uniform/zipf/lognormal mixes and steady /
//! bursty / phase-shifted / ramping / producer–consumer timing, not a
//! handful of hard-coded patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::format::{AllocTrace, TraceOp};

/// Distribution of request sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeLaw {
    /// Every request is `size` bytes.
    Fixed(u32),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest request, bytes.
        min: u32,
        /// Largest request, bytes.
        max: u32,
    },
    /// Zipf over power-of-two buckets from `min` to `max`: bucket `k`
    /// (0-based, smallest first) has probability ∝ `(k + 1)^-exponent`
    /// — many small requests, few large ones.
    Zipf {
        /// Smallest bucket, bytes (rounded up to a power of two).
        min: u32,
        /// Largest bucket, bytes.
        max: u32,
        /// Skew exponent (1.0 ≈ classic Zipf).
        exponent: f64,
    },
    /// Log-normal with parameters `mu`/`sigma` (of the underlying
    /// normal), clipped to `[min, max]` — right-skewed with a long
    /// tail, like the ShareGPT length model in `llm/trace.rs`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Clip floor, bytes.
        min: u32,
        /// Clip ceiling, bytes.
        max: u32,
    },
}

impl SizeLaw {
    /// Short label used in scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            SizeLaw::Fixed(_) => "fixed",
            SizeLaw::Uniform { .. } => "uniform",
            SizeLaw::Zipf { .. } => "zipf",
            SizeLaw::LogNormal { .. } => "lognormal",
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            SizeLaw::Fixed(size) => size.max(1),
            SizeLaw::Uniform { min, max } => rng.gen_range(min.max(1)..=max.max(min.max(1))),
            SizeLaw::Zipf { min, max, exponent } => {
                // Power-of-two buckets with precomputed CDF.
                let mut buckets = Vec::new();
                let mut b = min.max(1).next_power_of_two();
                while b <= max.max(1) {
                    buckets.push(b);
                    b = b.saturating_mul(2);
                }
                if buckets.is_empty() {
                    return min.max(1);
                }
                let weights: Vec<f64> = (0..buckets.len())
                    .map(|k| ((k + 1) as f64).powf(-exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut u = rng.gen_range(0.0..1.0) * total;
                for (k, w) in weights.iter().enumerate() {
                    if u < *w || k + 1 == buckets.len() {
                        return buckets[k];
                    }
                    u -= w;
                }
                buckets[0]
            }
            SizeLaw::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                // Box–Muller from two uniforms, as in llm/trace.rs.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (mu + sigma * z).exp();
                (v.round() as u32).clamp(min.max(1), max.max(min.max(1)))
            }
        }
    }
}

/// When requests arrive and who frees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalShape {
    /// A constant compute gap between consecutive requests.
    Steady {
        /// Compute cycles between requests.
        compute: u64,
    },
    /// Back-to-back bursts of requests separated by long pauses.
    Bursty {
        /// Requests per burst (no compute inside a burst).
        burst: usize,
        /// Compute cycles between bursts.
        gap: u64,
    },
    /// Alternating phases every `period` requests: an alloc-heavy
    /// phase that grows the live set, then a free-heavy phase that
    /// drains it — the allocator sees its occupancy swing.
    PhaseShift {
        /// Requests per phase.
        period: usize,
        /// Compute cycles between requests.
        compute: u64,
    },
    /// The inter-request compute gap ramps down linearly from
    /// `start_gap` to zero across the stream (request rate ramps up).
    Ramp {
        /// Initial compute gap, cycles.
        start_gap: u64,
    },
    /// Tasklet pairs: even tasklets allocate (producers), odd tasklets
    /// free their partner's allocations via cross-tasklet
    /// [`TraceOp::RemoteFree`] edges (consumers).
    ProducerConsumer {
        /// Compute cycles between a producer's requests; consumers
        /// pace at the same gap.
        compute: u64,
    },
}

impl TemporalShape {
    /// Short label used in scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            TemporalShape::Steady { .. } => "steady",
            TemporalShape::Bursty { .. } => "bursty",
            TemporalShape::PhaseShift { .. } => "phase-shift",
            TemporalShape::Ramp { .. } => "ramp",
            TemporalShape::ProducerConsumer { .. } => "producer-consumer",
        }
    }
}

/// One synthetic scenario: a size law crossed with a temporal shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Tasklets issuing requests.
    pub n_tasklets: usize,
    /// `Malloc` events per tasklet (producer tasklets under
    /// [`TemporalShape::ProducerConsumer`]).
    pub mallocs_per_tasklet: usize,
    /// Live allocations a tasklet holds before freeing its oldest
    /// (ignored by shapes that manage frees themselves).
    pub live_window: usize,
    /// Request-size distribution.
    pub size_law: SizeLaw,
    /// Temporal shape.
    pub shape: TemporalShape,
    /// Heap the trace targets, bytes.
    pub heap_size: u32,
    /// RNG seed; equal configs generate equal traces.
    pub seed: u64,
}

impl Default for SynthConfig {
    /// 16 tasklets, 128 mallocs each, steady 64 B requests on a 32 MB
    /// heap — the shape of the paper's Figure 15 microbenchmark.
    fn default() -> Self {
        SynthConfig {
            n_tasklets: 16,
            mallocs_per_tasklet: 128,
            live_window: 32,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 200 },
            heap_size: 32 << 20,
            seed: 0xA110C,
        }
    }
}

impl SynthConfig {
    /// The scenario's name: `<size law>/<shape>`.
    pub fn scenario_name(&self) -> String {
        format!("{}/{}", self.size_law.label(), self.shape.label())
    }
}

/// Expands `cfg` into a deterministic trace.
///
/// Per-tasklet streams draw from independent RNG substreams derived
/// from `cfg.seed`, so a trace is stable under changes to the tasklet
/// count of *other* scenarios and equal seeds give equal traces.
pub fn synthesize(cfg: &SynthConfig) -> AllocTrace {
    assert!(cfg.n_tasklets >= 1, "trace needs at least one tasklet");
    assert!(cfg.mallocs_per_tasklet >= 1, "trace needs requests");
    let mut trace = AllocTrace::new(cfg.scenario_name(), cfg.heap_size, cfg.n_tasklets);
    for tid in 0..cfg.n_tasklets {
        // SplitMix-style substream derivation per tasklet.
        let sub = cfg
            .seed
            .wrapping_add((tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(sub);
        trace.streams[tid] = match cfg.shape {
            TemporalShape::Steady { compute } => windowed_stream(cfg, &mut rng, |_| Some(compute)),
            TemporalShape::Bursty { burst, gap } => windowed_stream(cfg, &mut rng, |i| {
                if i % burst.max(1) == 0 {
                    Some(gap)
                } else {
                    None
                }
            }),
            TemporalShape::Ramp { start_gap } => {
                let n = cfg.mallocs_per_tasklet as u64;
                windowed_stream(cfg, &mut rng, |i| {
                    Some(start_gap.saturating_sub(start_gap * i as u64 / n.max(1)))
                })
            }
            TemporalShape::PhaseShift { period, compute } => {
                phase_shift_stream(cfg, &mut rng, period.max(1), compute)
            }
            TemporalShape::ProducerConsumer { compute } => {
                producer_consumer_stream(cfg, &mut rng, tid, compute)
            }
        };
    }
    trace.validate().expect("generator emits valid traces");
    trace
}

/// Allocation stream with a sliding live window: malloc into fresh
/// slots, freeing the oldest once more than `live_window` are live.
/// `gap(i)` is the compute inserted before request `i` (None for
/// back-to-back).
fn windowed_stream(
    cfg: &SynthConfig,
    rng: &mut StdRng,
    gap: impl Fn(usize) -> Option<u64>,
) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    let mut oldest = 0u32;
    for i in 0..cfg.mallocs_per_tasklet {
        if let Some(cycles) = gap(i) {
            if cycles > 0 {
                ops.push(TraceOp::Compute { cycles });
            }
        }
        ops.push(TraceOp::Malloc {
            size: cfg.size_law.sample(rng),
            slot: i as u32,
        });
        if i as u32 - oldest >= cfg.live_window.max(1) as u32 {
            ops.push(TraceOp::Free { slot: oldest });
            oldest += 1;
        }
    }
    ops
}

/// Alternating grow/drain phases: odd phases free everything the
/// previous grow phase allocated (newest first) between its mallocs.
fn phase_shift_stream(
    cfg: &SynthConfig,
    rng: &mut StdRng,
    period: usize,
    compute: u64,
) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    for i in 0..cfg.mallocs_per_tasklet {
        if compute > 0 {
            ops.push(TraceOp::Compute { cycles: compute });
        }
        let draining = (i / period) % 2 == 1;
        if draining {
            if let Some(slot) = live.pop() {
                ops.push(TraceOp::Free { slot });
            }
        }
        ops.push(TraceOp::Malloc {
            size: cfg.size_law.sample(rng),
            slot: i as u32,
        });
        live.push(i as u32);
        if draining {
            if let Some(slot) = live.pop() {
                ops.push(TraceOp::Free { slot });
            }
        }
    }
    ops
}

/// Producer–consumer pairing: even tasklets allocate, their odd
/// partners remote-free the same slots in order. An unpaired last
/// tasklet falls back to a steady windowed stream.
fn producer_consumer_stream(
    cfg: &SynthConfig,
    rng: &mut StdRng,
    tid: usize,
    compute: u64,
) -> Vec<TraceOp> {
    let is_producer = tid.is_multiple_of(2);
    let unpaired = is_producer && tid + 1 >= cfg.n_tasklets;
    if unpaired {
        return windowed_stream(cfg, rng, |_| Some(compute));
    }
    let mut ops = Vec::new();
    for i in 0..cfg.mallocs_per_tasklet {
        if compute > 0 {
            ops.push(TraceOp::Compute { cycles: compute });
        }
        if is_producer {
            ops.push(TraceOp::Malloc {
                size: cfg.size_law.sample(rng),
                slot: i as u32,
            });
        } else {
            ops.push(TraceOp::RemoteFree {
                tasklet: (tid - 1) as u32,
                slot: i as u32,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            size_law: SizeLaw::Zipf {
                min: 16,
                max: 4096,
                exponent: 1.1,
            },
            shape: TemporalShape::Bursty {
                burst: 8,
                gap: 5000,
            },
            ..SynthConfig::default()
        };
        assert_eq!(synthesize(&cfg), synthesize(&cfg));
        let other = SynthConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(synthesize(&cfg), synthesize(&other));
    }

    #[test]
    fn every_family_emits_expected_mallocs() {
        let laws = [
            SizeLaw::Fixed(64),
            SizeLaw::Uniform { min: 16, max: 512 },
            SizeLaw::Zipf {
                min: 16,
                max: 4096,
                exponent: 1.0,
            },
            SizeLaw::LogNormal {
                mu: 5.0,
                sigma: 1.0,
                min: 8,
                max: 8192,
            },
        ];
        let shapes = [
            TemporalShape::Steady { compute: 100 },
            TemporalShape::Bursty {
                burst: 4,
                gap: 1000,
            },
            TemporalShape::PhaseShift {
                period: 16,
                compute: 50,
            },
            TemporalShape::Ramp { start_gap: 2000 },
        ];
        for law in laws {
            for shape in shapes {
                let cfg = SynthConfig {
                    n_tasklets: 4,
                    mallocs_per_tasklet: 64,
                    size_law: law,
                    shape,
                    ..SynthConfig::default()
                };
                let t = synthesize(&cfg);
                t.validate().unwrap();
                assert_eq!(t.malloc_count(), 4 * 64, "{}", cfg.scenario_name());
            }
        }
    }

    #[test]
    fn zipf_skews_small_and_uniform_spans_range() {
        let cfg = SynthConfig {
            n_tasklets: 1,
            mallocs_per_tasklet: 2000,
            size_law: SizeLaw::Zipf {
                min: 16,
                max: 4096,
                exponent: 1.2,
            },
            shape: TemporalShape::Steady { compute: 0 },
            ..SynthConfig::default()
        };
        let sizes: Vec<u32> = synthesize(&cfg).streams[0]
            .iter()
            .filter_map(|op| match op {
                TraceOp::Malloc { size, .. } => Some(*size),
                _ => None,
            })
            .collect();
        let small = sizes.iter().filter(|&&s| s <= 64).count();
        assert!(
            small * 2 > sizes.len(),
            "zipf must skew small: {small}/{}",
            sizes.len()
        );
        let uni = SynthConfig {
            size_law: SizeLaw::Uniform { min: 16, max: 4096 },
            ..cfg
        };
        let sizes: Vec<u32> = synthesize(&uni).streams[0]
            .iter()
            .filter_map(|op| match op {
                TraceOp::Malloc { size, .. } => Some(*size),
                _ => None,
            })
            .collect();
        assert!(sizes.iter().any(|&s| s < 256));
        assert!(sizes.iter().any(|&s| s > 2048));
        assert!(sizes.iter().all(|&s| (16..=4096).contains(&s)));
    }

    #[test]
    fn producer_consumer_has_remote_edges() {
        let cfg = SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 16,
            shape: TemporalShape::ProducerConsumer { compute: 100 },
            ..SynthConfig::default()
        };
        let t = synthesize(&cfg);
        // Producers malloc, consumers only remote-free.
        assert!(t.streams[0]
            .iter()
            .any(|op| matches!(op, TraceOp::Malloc { .. })));
        let remote = t.streams[1]
            .iter()
            .filter(|op| matches!(op, TraceOp::RemoteFree { tasklet: 0, .. }))
            .count();
        assert_eq!(remote, 16);
        assert_eq!(t.malloc_count(), 2 * 16, "two producers");
    }

    #[test]
    fn odd_tasklet_count_keeps_last_producer_self_contained() {
        let cfg = SynthConfig {
            n_tasklets: 3,
            mallocs_per_tasklet: 8,
            shape: TemporalShape::ProducerConsumer { compute: 10 },
            ..SynthConfig::default()
        };
        let t = synthesize(&cfg);
        t.validate().unwrap();
        // Tasklet 2 has no partner: it frees its own slots.
        assert!(t.streams[2]
            .iter()
            .all(|op| !matches!(op, TraceOp::RemoteFree { .. })));
    }

    #[test]
    fn phase_shift_drains_and_grows() {
        let cfg = SynthConfig {
            n_tasklets: 1,
            mallocs_per_tasklet: 64,
            shape: TemporalShape::PhaseShift {
                period: 8,
                compute: 10,
            },
            ..SynthConfig::default()
        };
        let t = synthesize(&cfg);
        // Walk the live set: grow phases must build a peak, drain
        // phases must empty it again.
        let mut live = 0i64;
        let mut peak = 0i64;
        let mut emptied_after_peak = false;
        for op in &t.streams[0] {
            match op {
                TraceOp::Malloc { .. } => live += 1,
                TraceOp::Free { .. } => live -= 1,
                _ => {}
            }
            peak = peak.max(live);
            if peak >= 8 && live == 0 {
                emptied_after_peak = true;
            }
        }
        assert!(peak >= 8, "grow phase must build {peak}");
        assert!(emptied_after_peak, "drain phase must empty the live set");
    }
}
