//! Recording traces from live workloads.
//!
//! [`TraceRecorder`] wraps any [`PimAllocator`] and observes the
//! stream of calls each tasklet makes: allocator calls become
//! [`TraceOp::Malloc`]/[`TraceOp::Free`] events (with a cross-tasklet
//! [`TraceOp::RemoteFree`] edge when a tasklet frees memory another
//! tasklet allocated), and the virtual-time gaps *between* a tasklet's
//! calls become [`TraceOp::Compute`] events. Because the recorder only
//! reads the context clock, wrapping an allocator never perturbs the
//! run being recorded — the workload's results are identical with and
//! without it.

use std::any::Any;
use std::collections::HashMap;

use pim_malloc::{AllocError, AllocStats, PimAllocator};
use pim_sim::{Cycles, TaskletCtx};

use crate::format::{AllocTrace, TraceOp};

/// A [`PimAllocator`] wrapper that records every call into an
/// [`AllocTrace`] while forwarding to the wrapped allocator.
#[derive(Debug)]
pub struct TraceRecorder<A> {
    inner: A,
    name: String,
    heap_size: u32,
    streams: Vec<Vec<TraceOp>>,
    /// End time of each tasklet's previous recorded event; the gap to
    /// the next call is that tasklet's compute. `None` until the first
    /// call — allocator-init time before recording is not workload
    /// compute, so the first event records no gap.
    last_end: Vec<Option<Cycles>>,
    /// Next unused slot id per tasklet (slots are never reused, so
    /// recorder-produced traces have no shadow frees).
    next_slot: Vec<u32>,
    /// Live address → (owner tasklet, slot).
    by_addr: HashMap<u32, (u32, u32)>,
}

impl<A: PimAllocator> TraceRecorder<A> {
    /// Wraps `inner`, recording a trace named `name` for `n_tasklets`
    /// tasklets against a `heap_size`-byte heap.
    pub fn new(inner: A, name: impl Into<String>, heap_size: u32, n_tasklets: usize) -> Self {
        TraceRecorder {
            inner,
            name: name.into(),
            heap_size,
            streams: vec![Vec::new(); n_tasklets],
            last_end: vec![None; n_tasklets],
            next_slot: vec![0; n_tasklets],
            by_addr: HashMap::new(),
        }
    }

    /// The wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Finishes recording, returning the trace and the allocator.
    pub fn into_trace(self) -> (AllocTrace, A) {
        (
            AllocTrace {
                name: self.name,
                n_tasklets: self.streams.len(),
                heap_size: self.heap_size,
                streams: self.streams,
            },
            self.inner,
        )
    }

    /// Records the compute gap since `tid`'s previous event, if any.
    fn record_gap(&mut self, tid: usize, start: Cycles) {
        if let Some(prev) = self.last_end[tid] {
            let gap = start.saturating_sub(prev);
            if gap > Cycles::ZERO {
                self.streams[tid].push(TraceOp::Compute { cycles: gap.0 });
            }
        }
    }

    /// Records a span that must replay as pure compute (failed calls,
    /// frees of addresses the recorder never saw): the gap before the
    /// call plus the call's own duration, in one event.
    fn record_opaque(&mut self, tid: usize, start: Cycles, end: Cycles) {
        let total = end.saturating_sub(self.last_end[tid].unwrap_or(start));
        if total > Cycles::ZERO {
            self.streams[tid].push(TraceOp::Compute { cycles: total.0 });
        }
    }
}

impl<A: PimAllocator> PimAllocator for TraceRecorder<A> {
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        let tid = ctx.tid();
        let start = ctx.now();
        let result = self.inner.pim_malloc(ctx, size);
        let end = ctx.now();
        match &result {
            Ok(addr) => {
                self.record_gap(tid, start);
                let slot = self.next_slot[tid];
                self.next_slot[tid] += 1;
                self.streams[tid].push(TraceOp::Malloc { size, slot });
                self.by_addr.insert(*addr, (tid as u32, slot));
            }
            Err(_) => self.record_opaque(tid, start, end),
        }
        self.last_end[tid] = Some(end);
        result
    }

    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        let tid = ctx.tid();
        let start = ctx.now();
        let result = self.inner.pim_free(ctx, addr);
        let end = ctx.now();
        match (&result, self.by_addr.remove(&addr)) {
            (Ok(()), Some((owner, slot))) => {
                self.record_gap(tid, start);
                self.streams[tid].push(if owner as usize == tid {
                    TraceOp::Free { slot }
                } else {
                    TraceOp::RemoteFree {
                        tasklet: owner,
                        slot,
                    }
                });
            }
            (Ok(()), None) | (Err(_), _) => self.record_opaque(tid, start, end),
        }
        self.last_end[tid] = Some(end);
        result
    }

    fn alloc_stats(&self) -> &AllocStats {
        self.inner.alloc_stats()
    }

    fn as_any(&self) -> &dyn Any {
        // Forward so implementation-specific stats probes (metadata
        // traffic, buddy-cache hit rates) still find the real type.
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_malloc::{AllocGeometry, PimMalloc};
    use pim_sim::{DpuConfig, DpuSim};

    fn setup(tasklets: usize) -> (DpuSim, TraceRecorder<PimMalloc>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        let cfg = AllocGeometry::sw(tasklets).with_heap_size(1 << 20).build();
        let inner = PimMalloc::init(&mut dpu, cfg).expect("init");
        let rec = TraceRecorder::new(inner, "test", 1 << 20, tasklets);
        (dpu, rec)
    }

    #[test]
    fn records_malloc_free_and_compute_gaps() {
        let (mut dpu, mut rec) = setup(1);
        let addr = {
            let mut ctx = dpu.ctx(0);
            rec.pim_malloc(&mut ctx, 64).unwrap()
        };
        {
            let mut ctx = dpu.ctx(0);
            ctx.instrs(100); // compute between the two calls
            rec.pim_free(&mut ctx, addr).unwrap();
        }
        let (trace, _alloc) = rec.into_trace();
        assert_eq!(trace.n_tasklets, 1);
        // Time before the first call (allocator init) is not compute.
        assert_eq!(trace.streams[0][0], TraceOp::Malloc { size: 64, slot: 0 });
        assert!(matches!(trace.streams[0][1], TraceOp::Compute { cycles } if cycles >= 100));
        assert_eq!(trace.streams[0][2], TraceOp::Free { slot: 0 });
        trace.validate().unwrap();
    }

    #[test]
    fn cross_tasklet_free_becomes_remote_edge() {
        let (mut dpu, mut rec) = setup(2);
        let addr = {
            let mut ctx = dpu.ctx(0);
            rec.pim_malloc(&mut ctx, 128).unwrap()
        };
        {
            let mut ctx = dpu.ctx(1);
            rec.pim_free(&mut ctx, addr).unwrap();
        }
        let (trace, _alloc) = rec.into_trace();
        assert_eq!(trace.streams[0][0], TraceOp::Malloc { size: 128, slot: 0 });
        assert!(trace.streams[1].iter().any(|op| matches!(
            op,
            TraceOp::RemoteFree {
                tasklet: 0,
                slot: 0
            }
        )));
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        // The same call sequence with and without the recorder leaves
        // identical clocks and addresses.
        let run = |record: bool| -> (Vec<u32>, Cycles) {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(2));
            let cfg = AllocGeometry::sw(2).with_heap_size(1 << 20).build();
            let inner = PimMalloc::init(&mut dpu, cfg).expect("init");
            let mut plain: Box<dyn PimAllocator> = if record {
                Box::new(TraceRecorder::new(inner, "t", 1 << 20, 2))
            } else {
                Box::new(inner)
            };
            let mut addrs = Vec::new();
            for i in 0..10u32 {
                let tid = (i % 2) as usize;
                let mut ctx = dpu.ctx(tid);
                addrs.push(plain.pim_malloc(&mut ctx, 32 + i).unwrap());
            }
            (addrs, dpu.max_clock())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn failed_calls_replay_as_compute() {
        let (mut dpu, mut rec) = setup(1);
        {
            let mut ctx = dpu.ctx(0);
            // Over-heap request fails and must not become a Malloc op.
            assert!(rec.pim_malloc(&mut ctx, 1 << 30).is_err());
            // Free of an address the recorder never saw.
            let _ = rec.pim_free(&mut ctx, 0xdead_beef);
        }
        let (trace, _alloc) = rec.into_trace();
        assert!(trace.streams[0]
            .iter()
            .all(|op| matches!(op, TraceOp::Compute { .. })));
    }
}
