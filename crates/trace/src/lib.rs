//! # pim-trace — the allocation-trace subsystem
//!
//! The fourth pillar next to `pim-malloc` (core), `pim-sim`, and
//! `pim-workloads`: workload scenarios as **data** instead of code.
//!
//! * [`format`] — the canonical [`AllocTrace`]: versioned, JSON
//!   round-trippable per-tasklet event streams of
//!   `Malloc`/`Free`/`Compute`, plus cross-tasklet `RemoteFree` edges
//!   for producer–consumer patterns.
//! * [`record`] — [`TraceRecorder`], a transparent
//!   [`PimAllocator`](pim_malloc::PimAllocator) wrapper that captures
//!   any live workload (micro, graph update, LLM serving) as a trace
//!   without perturbing it.
//! * [`synth`] — [`synthesize`]: scenario families as generator
//!   configs, crossing size laws (fixed / uniform / zipf / lognormal)
//!   with temporal shapes (steady / bursty / phase-shift / ramp /
//!   producer–consumer).
//! * [`replay`] — the deterministic virtual-time replay engine
//!   ([`replay()`]) the workloads driver itself delegates to, plus
//!   [`replay_fleet`] for multi-DPU replay on the parallel engine with
//!   host-batched trace distribution.
//!
//! Capture once, replay everywhere: the same trace file drives every
//! [`PimAllocator`](pim_malloc::PimAllocator) design and both
//! execution engines with byte-identical latency timelines.
//!
//! ```
//! use pim_trace::{replay_fleet, synthesize, FleetConfig, SynthConfig};
//!
//! let trace = synthesize(&SynthConfig {
//!     n_tasklets: 4,
//!     mallocs_per_tasklet: 16,
//!     ..SynthConfig::default()
//! });
//! let round = trace.to_json();
//! assert_eq!(pim_trace::AllocTrace::from_json(&round).unwrap(), trace);
//! let fleet = replay_fleet(
//!     &trace,
//!     &FleetConfig { n_dpus: 2, ..FleetConfig::default() },
//!     |dpu| {
//!         let cfg = pim_malloc::AllocGeometry::sw(4).build();
//!         Box::new(pim_malloc::PimMalloc::init(dpu, cfg).unwrap())
//!     },
//! );
//! assert_eq!(fleet.per_dpu.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod record;
pub mod replay;
pub mod synth;

pub use format::{AllocTrace, TraceError, TraceOp, TRACE_SCHEMA_VERSION};
pub use record::TraceRecorder;
pub use replay::{replay, replay_fleet, replay_streams, FleetConfig, FleetResult, ReplayResult};
pub use synth::{synthesize, SizeLaw, SynthConfig, TemporalShape};
