//! Producer-consumer replay through the tiered free paths: on the
//! default three-tier allocator, the trace's `RemoteFree` edges must
//! land in the transfer cache (batched MRAM pricing) and never take
//! the legacy global-lock walk; on the config-reachable two-tier
//! allocator the same edges must all take the global path. The
//! three-tier replay must also finish no later — the middle tier
//! exists to make cross-tasklet frees cheaper, and the modeled costs
//! have to show it.

use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc, TierPolicy};
use pim_sim::{Cycles, DpuConfig, DpuSim};
use pim_trace::{replay, synthesize, SizeLaw, SynthConfig, TemporalShape};

fn pc_trace() -> pim_trace::AllocTrace {
    synthesize(&SynthConfig {
        n_tasklets: 8,
        mallocs_per_tasklet: 64,
        live_window: 16,
        size_law: SizeLaw::Fixed(512),
        shape: TemporalShape::ProducerConsumer { compute: 500 },
        heap_size: 1 << 22,
        seed: 0xA110C,
    })
}

fn run(policy: TierPolicy) -> (u64, u64, Cycles) {
    let trace = pc_trace();
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let mut geom = AllocGeometry::sw(trace.n_tasklets).with_heap_size(trace.heap_size);
    if policy == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut alloc: Box<dyn PimAllocator> =
        Box::new(PimMalloc::init(&mut dpu, geom.build()).expect("init"));
    let result = replay(&mut dpu, alloc.as_mut(), &trace);
    assert_eq!(result.oom_count, 0, "heap sized for the trace");
    assert_eq!(result.dropped_frees, 0, "every remote edge satisfiable");
    let pm = alloc
        .as_any()
        .downcast_ref::<PimMalloc>()
        .expect("built a PimMalloc");
    (
        pm.alloc_stats().frees_remote_transfer,
        pm.alloc_stats().frees_remote_global,
        result.finish,
    )
}

#[test]
fn remote_frees_route_through_the_transfer_cache_by_default() {
    let (remote_transfer, remote_global, _) = run(TierPolicy::ThreeTier);
    assert!(
        remote_transfer > 0,
        "producer-consumer trace must exercise the transfer cache"
    );
    assert_eq!(
        remote_global, 0,
        "no remote free may take the global-lock path on three-tier"
    );
}

#[test]
fn two_tier_remote_frees_all_take_the_global_path() {
    let (remote_transfer, remote_global, _) = run(TierPolicy::TwoTier);
    assert_eq!(remote_transfer, 0);
    assert!(remote_global > 0);
}

#[test]
fn three_tier_finishes_no_later_than_two_tier() {
    let (transfer_frees, _, finish3) = run(TierPolicy::ThreeTier);
    let (_, global_frees, finish2) = run(TierPolicy::TwoTier);
    assert_eq!(
        transfer_frees, global_frees,
        "both tiers see the same remote frees"
    );
    assert!(
        finish3 <= finish2,
        "three-tier ({finish3:?}) must not lose to two-tier ({finish2:?}) \
         on a remote-free-heavy trace"
    );
}
