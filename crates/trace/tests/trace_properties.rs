//! Property tests of the trace subsystem.
//!
//! * **Serde round-trip** — arbitrary traces (all four op kinds,
//!   pathological slot/size/cycle values) survive
//!   `to_json` → `from_json` losslessly.
//! * **Replay determinism** — replaying one trace twice, and across
//!   the serial loop vs the `parallel_indexed` engine, yields
//!   byte-identical latency timelines.
//! * **Replay robustness** — arbitrary (even nonsensical) traces
//!   replay without panicking: bad frees drop, OOM counts, the run
//!   terminates.

use pim_malloc::PimAllocator;
use pim_sim::{DpuConfig, DpuSim};
use pim_trace::{
    replay, replay_fleet, synthesize, AllocTrace, FleetConfig, SizeLaw, SynthConfig, TemporalShape,
    TraceOp,
};
use proptest::collection::vec;
use proptest::prelude::*;

const N_TASKLETS: usize = 4;

fn op_strategy() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        4 => (1u32..16384, 0u32..24).prop_map(|(size, slot)| TraceOp::Malloc { size, slot }),
        2 => (0u32..24).prop_map(|slot| TraceOp::Free { slot }),
        1 => (0u32..N_TASKLETS as u32, 0u32..24)
            .prop_map(|(tasklet, slot)| TraceOp::RemoteFree { tasklet, slot }),
        2 => (0u64..100_000).prop_map(|cycles| TraceOp::Compute { cycles }),
    ]
}

fn trace_strategy() -> impl Strategy<Value = AllocTrace> {
    vec(vec(op_strategy(), 0..40), N_TASKLETS..=N_TASKLETS).prop_map(|streams| AllocTrace {
        name: "prop".to_owned(),
        n_tasklets: N_TASKLETS,
        heap_size: 1 << 20,
        streams,
    })
}

fn sw_build(dpu: &mut DpuSim) -> Box<dyn PimAllocator> {
    let cfg = pim_malloc::AllocGeometry::sw(N_TASKLETS)
        .with_heap_size(1 << 20)
        .build();
    Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serde_round_trips_losslessly(trace in trace_strategy()) {
        let json = trace.to_json();
        let back = AllocTrace::from_json(&json);
        // Arbitrary streams may violate validation (that's fine — they
        // must then be *rejected*, not silently mangled).
        match (trace.validate(), back) {
            (Ok(()), Ok(parsed)) => prop_assert_eq!(parsed, trace),
            (Ok(()), Err(e)) => prop_assert!(false, "valid trace failed to parse: {e}"),
            (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => prop_assert!(false, "invalid trace parsed: {e}"),
        }
    }

    #[test]
    fn replay_is_deterministic_and_total(trace in trace_strategy()) {
        prop_assume!(trace.validate().is_ok());
        let run = || {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(N_TASKLETS));
            let mut alloc = sw_build(&mut dpu);
            replay(&mut dpu, alloc.as_mut(), &trace)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.oom_count, b.oom_count);
        prop_assert_eq!(a.dropped_frees, b.dropped_frees);
    }

    #[test]
    fn serial_and_parallel_fleets_match(seed in 0u64..1000) {
        let cfg = SynthConfig {
            n_tasklets: N_TASKLETS,
            mallocs_per_tasklet: 48,
            size_law: SizeLaw::Zipf { min: 16, max: 2048, exponent: 1.0 },
            shape: TemporalShape::Bursty { burst: 8, gap: 4000 },
            heap_size: 1 << 20,
            seed,
            ..SynthConfig::default()
        };
        let trace = synthesize(&cfg);
        let fleet = |exec: pim_sim::ExecPolicy| replay_fleet(
            &trace,
            &FleetConfig {
                n_dpus: 5,
                ctx: pim_sim::SimContext::default().with_exec(exec),
            },
            sw_build,
        );
        let par = fleet(pim_sim::ExecPolicy::StickySteal);
        let ser = fleet(pim_sim::ExecPolicy::Serial);
        for (p, s) in par.per_dpu.iter().zip(&ser.per_dpu) {
            prop_assert_eq!(&p.timeline, &s.timeline);
        }
        prop_assert_eq!(par.kernel_finish, ser.kernel_finish);
    }
}
