//! Selecting which allocator a workload runs on.

use pim_malloc::{
    AllocGeometry, BackendKind, PimAllocator, PimMalloc, StrawManAllocator, StrawManConfig,
};
use pim_sim::{BuddyCacheConfig, DpuSim};
use serde::{Deserialize, Serialize};

/// The allocator design points compared throughout the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// The straw-man `buddy_alloc_PIM_DRAM` (20-level tree, §III-B).
    StrawMan,
    /// PIM-malloc-SW: thread caches + coarse-buffered buddy backend.
    Sw,
    /// PIM-malloc-SW without thread-cache pre-population (Table III).
    SwLazy,
    /// PIM-malloc-HW/SW: thread caches + hardware buddy cache backend.
    HwSw,
    /// PIM-malloc with the fine-grained software-LRU backend — the
    /// §IV-B ablation that regressed 29%.
    SwFineLru,
}

impl AllocatorKind {
    /// The three headline designs of Figures 15, 17 and 18.
    pub const HEADLINE: [AllocatorKind; 3] = [
        AllocatorKind::StrawMan,
        AllocatorKind::Sw,
        AllocatorKind::HwSw,
    ];

    /// Short label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::StrawMan => "Straw-man",
            AllocatorKind::Sw => "PIM-malloc-SW",
            AllocatorKind::SwLazy => "PIM-malloc-lazy",
            AllocatorKind::HwSw => "PIM-malloc-HW/SW",
            AllocatorKind::SwFineLru => "PIM-malloc-SW (fine-grained LRU)",
        }
    }

    /// Builds and initializes the allocator on `dpu` with a heap of
    /// `heap_size` bytes for `n_tasklets` tasklets.
    ///
    /// # Panics
    ///
    /// Panics if initialization fails (WRAM overflow or heap too small
    /// for pre-population) — workload configurations are trusted.
    pub fn build(
        self,
        dpu: &mut DpuSim,
        n_tasklets: usize,
        heap_size: u32,
    ) -> Box<dyn PimAllocator> {
        match self {
            AllocatorKind::StrawMan => {
                let cfg = StrawManConfig {
                    heap_size,
                    ..StrawManConfig::default()
                };
                Box::new(StrawManAllocator::init(dpu, cfg).expect("straw-man init"))
            }
            AllocatorKind::Sw => {
                let cfg = AllocGeometry::sw(n_tasklets)
                    .with_heap_size(heap_size)
                    .build();
                Box::new(PimMalloc::init(dpu, cfg).expect("PIM-malloc-SW init"))
            }
            AllocatorKind::SwLazy => {
                let cfg = AllocGeometry::sw(n_tasklets)
                    .with_heap_size(heap_size)
                    .lazy()
                    .build();
                Box::new(PimMalloc::init(dpu, cfg).expect("PIM-malloc-lazy init"))
            }
            AllocatorKind::HwSw => {
                let cfg = AllocGeometry::hw_sw(n_tasklets)
                    .with_heap_size(heap_size)
                    .build();
                Box::new(PimMalloc::init(dpu, cfg).expect("PIM-malloc-HW/SW init"))
            }
            AllocatorKind::SwFineLru => {
                // Same 512 B of WRAM as a 2 KB coarse window would use
                // per four granules: 64 granules of 8 B.
                let cfg = AllocGeometry::sw(n_tasklets)
                    .with_heap_size(heap_size)
                    .with_backend(BackendKind::FineLru {
                        entries: 64,
                        granule_bytes: 8,
                    })
                    .build();
                Box::new(PimMalloc::init(dpu, cfg).expect("fine-LRU init"))
            }
        }
    }

    /// The buddy-cache configuration used by [`AllocatorKind::HwSw`],
    /// for sensitivity sweeps (Figure 16).
    pub fn hw_sw_with_cache(
        dpu: &mut DpuSim,
        n_tasklets: usize,
        heap_size: u32,
        cache: BuddyCacheConfig,
    ) -> Box<dyn PimAllocator> {
        let cfg = AllocGeometry::hw_sw(n_tasklets)
            .with_heap_size(heap_size)
            .with_backend(BackendKind::HwCache { cache })
            .build();
        Box::new(PimMalloc::init(dpu, cfg).expect("HW/SW init"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::DpuConfig;

    #[test]
    fn every_kind_builds_and_allocates() {
        for kind in [
            AllocatorKind::StrawMan,
            AllocatorKind::Sw,
            AllocatorKind::SwLazy,
            AllocatorKind::HwSw,
            AllocatorKind::SwFineLru,
        ] {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
            let mut alloc = kind.build(&mut dpu, 4, 1 << 20);
            let mut ctx = dpu.ctx(0);
            let addr = alloc.pim_malloc(&mut ctx, 64).unwrap();
            alloc.pim_free(&mut ctx, addr).unwrap();
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn headline_list_matches_paper_figures() {
        assert_eq!(
            AllocatorKind::HEADLINE,
            [
                AllocatorKind::StrawMan,
                AllocatorKind::Sw,
                AllocatorKind::HwSw
            ]
        );
    }
}
