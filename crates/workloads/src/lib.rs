//! # pim-workloads — evaluation workloads for the PIM-malloc reproduction
//!
//! The three workload families the paper evaluates:
//!
//! * [`micro`] — the standalone allocation microbenchmark behind
//!   Figures 7, 8, 15 and 16: N tasklets each issuing a stream of
//!   `pim_malloc`/`pim_free` requests of configurable size.
//! * [`graph`] — dynamic graph update (case study #1, Figures 3 and
//!   17): a synthetic power-law graph is updated with a fixed set of
//!   new edges under three representations — static CSR, an array of
//!   linked lists, and variable-sized arrays (Hornet-style).
//! * [`llm`] — the attention layer of LLM inference (case study #2,
//!   Figures 4 and 18): KV-cache growth under static vs dynamic
//!   allocation, plus a discrete-event serving simulator reporting
//!   throughput and TPOT percentiles.
//!
//! All workloads are generic over the allocator via
//! [`AllocatorKind`], mirroring how the paper swaps the straw-man,
//! PIM-malloc-SW and PIM-malloc-HW/SW under identical drivers.
//!
//! [`requests`] additionally packages each family's allocation shape
//! as a `pim_serving` request class, so the open-loop serving frontend
//! can drive the fleet with a micro/graph/LLM mix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc_kind;
pub mod driver;
pub mod graph;
pub mod llm;
pub mod micro;
pub mod requests;

pub use alloc_kind::AllocatorKind;
