//! The multi-DPU dynamic graph update experiment (Figures 3(c), 11,
//! and 17 of the paper).
//!
//! Edges are partitioned across DPUs by source node (`u % n_dpus`) and,
//! within a DPU, across tasklets (`local_u % n_tasklets`), so all
//! updates of one node stay on one tasklet — the standard UPMEM
//! data-partitioning discipline. The pre-update graph is built first
//! (untimed); the new edges are then inserted in a timed phase whose
//! duration, cycle breakdown, allocation latencies and metadata
//! traffic are reported.

use pim_malloc::{MetadataStore, PimAllocator};
use pim_sim::{
    Cycles, DpuConfig, DpuSim, Executor, SimContext, TaskletStats, TransferDirection, TransferPlan,
};
use serde::{Deserialize, Serialize};

use super::csr::CsrGraph;
use super::generator::{generate_power_law, split_for_update_count, UpdateWorkload};
use super::linked::LinkedListGraph;
use super::vararray::VarArrayGraph;
use crate::driver::VirtualTimeQueue;
use crate::AllocatorKind;

/// Graph representation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphRepr {
    /// Static CSR arrays, shifted in place on every insert.
    StaticCsr,
    /// Array of linked lists of fixed 256 B chunks.
    LinkedList,
    /// Variable-sized (power-of-two) edge arrays.
    VarArray,
}

impl GraphRepr {
    /// Label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            GraphRepr::StaticCsr => "Static (CSR)",
            GraphRepr::LinkedList => "Dynamic (Array of linked list)",
            GraphRepr::VarArray => "Dynamic (Variable sized array)",
        }
    }
}

/// Configuration of the graph update experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphUpdateConfig {
    /// Representation under test.
    pub repr: GraphRepr,
    /// Allocator for the dynamic representations (ignored for CSR).
    pub allocator: AllocatorKind,
    /// Number of DPUs the graph is partitioned over.
    pub n_dpus: usize,
    /// Tasklets per DPU.
    pub n_tasklets: usize,
    /// Global node count.
    pub n_nodes: u32,
    /// Pre-update (existing) edge count.
    pub base_edges: usize,
    /// Edges inserted in the timed phase.
    pub new_edges: usize,
    /// Per-DPU heap size for the dynamic representations.
    pub heap_size: u32,
    /// Shared execution context: `ctx.seed` drives the workload RNG,
    /// `ctx.transfer`/`ctx.batching` price and schedule the
    /// edge-staging push, and `ctx.exec` places per-DPU simulations on
    /// the host's topology-aware executor. Simulated results are
    /// identical under every policy; the sticky policies keep each
    /// DPU's state on the NUMA node that last simulated it across
    /// repeated updates.
    pub ctx: SimContext,
}

impl Default for GraphUpdateConfig {
    /// A gowalla-shaped workload scaled to simulator-friendly size:
    /// average degree ≈ 4.8 (gowalla's), 1:2 new:existing split.
    fn default() -> Self {
        GraphUpdateConfig {
            repr: GraphRepr::LinkedList,
            allocator: AllocatorKind::Sw,
            n_dpus: 16,
            n_tasklets: 16,
            n_nodes: 8192,
            base_edges: 26_000,
            new_edges: 13_000,
            heap_size: 32 << 20,
            ctx: SimContext::default(),
        }
    }
}

/// Results of one graph update run.
#[derive(Debug, Clone)]
pub struct GraphUpdateResult {
    /// Representation evaluated.
    pub repr: GraphRepr,
    /// Allocator evaluated (meaningless for CSR).
    pub allocator: AllocatorKind,
    /// Timed update phase duration (slowest DPU), seconds.
    pub update_secs: f64,
    /// Update throughput in million edges per second (Figure 17(a)).
    pub throughput_meps: f64,
    /// Cycle breakdown of the update phase, summed over DPUs
    /// (Figure 17(a) left axis).
    pub breakdown: TaskletStats,
    /// `(completion ms, latency µs)` of every `pim_malloc` on DPU 0
    /// during the update phase (Figure 17(c)).
    pub alloc_timeline: Vec<(f64, f64)>,
    /// Total `pim_malloc` time per tasklet on DPU 0, µs (Figure 17(b)).
    pub per_tasklet_malloc_us: Vec<f64>,
    /// Metadata bytes moved between MRAM and WRAM by the allocator
    /// across all DPUs.
    pub meta_bytes: u64,
    /// Aggregate MRAM<->WRAM traffic across all DPUs, bytes — data and
    /// metadata together (Figure 17(d)'s DRAM transfer comparison).
    pub dram_bytes: u64,
    /// Fraction of `pim_malloc` calls serviced by the frontend
    /// (Figure 11(a)).
    pub frontend_fraction: f64,
    /// Fraction of aggregate allocation latency spent on
    /// backend-involved requests (Figure 11(b)).
    pub backend_latency_fraction: f64,
    /// Total `pim_malloc` calls across DPUs (build + update).
    pub total_mallocs: u64,
    /// Fragmentation A/U at end of run (PIM-malloc only; 0 otherwise).
    pub frag_ratio: f64,
    /// Modeled host time to stage the new-edge streams into the DPUs'
    /// MRAM before the timed phase (one 8 B buffer entry per edge,
    /// partitioned like the edges themselves). Reported separately
    /// from [`GraphUpdateResult::update_secs`] so kernel throughput
    /// stays comparable with Figure 17; the host can stage the next
    /// batch while the DPUs process the current one.
    pub host_push_secs: f64,
    /// Host↔PIM transfer calls the staging push issued (per-DPU calls
    /// or per-rank shards, per the config context's batching policy).
    pub host_xfer_calls: u64,
    /// Modeled host seconds of NUMA placement cost for this run's DPU
    /// fan-out (cold starts and cross-node moves priced by
    /// [`pim_sim::TransferModel::cross_node_us`]). A host-side **diagnostic**:
    /// it reflects the graph engine's executor ledger history, and
    /// concurrent graph updates in one process (e.g. a figure sweep)
    /// interleave epochs on that shared ledger — the simulated update
    /// results stay byte-identical regardless. Reported separately
    /// from [`GraphUpdateResult::update_secs`], like
    /// [`GraphUpdateResult::host_push_secs`].
    pub host_placement_secs: f64,
}

/// Partitions a global edge `(u, v)` to `(dpu, tasklet, local_u)`.
fn place(u: u32, n_dpus: usize, n_tasklets: usize) -> (usize, usize, u32) {
    let dpu = (u as usize) % n_dpus;
    let local = u / n_dpus as u32;
    let tasklet = (local as usize) % n_tasklets;
    (dpu, tasklet, local)
}

fn workload(cfg: &GraphUpdateConfig) -> UpdateWorkload {
    let total = cfg.base_edges + cfg.new_edges;
    let g = generate_power_law(cfg.n_nodes, total, cfg.ctx.seed);
    split_for_update_count(g, cfg.new_edges, cfg.ctx.seed ^ 0x5eed)
}

/// Per-DPU edge streams for one phase: `streams[tasklet] = [(local_u, v)]`.
fn dpu_streams(edges: &[(u32, u32)], dpu: usize, cfg: &GraphUpdateConfig) -> Vec<Vec<(u32, u32)>> {
    let mut streams = vec![Vec::new(); cfg.n_tasklets];
    for &(u, v) in edges {
        let (d, t, local) = place(u, cfg.n_dpus, cfg.n_tasklets);
        if d == dpu {
            streams[t].push((local, v));
        }
    }
    streams
}

/// Inserts the streams in virtual-time order. `insert` performs one
/// edge insertion and returns the latencies of any `pim_malloc` calls
/// it triggered. Returns the malloc event series `(completion,
/// latency)` and the per-tasklet total malloc time.
fn run_phase<F>(
    dpu: &mut DpuSim,
    streams: &[Vec<(u32, u32)>],
    mut insert: F,
) -> (Vec<(Cycles, Cycles)>, Vec<Cycles>)
where
    F: FnMut(&mut DpuSim, usize, u32, u32) -> Vec<Cycles>,
{
    let n = streams.len();
    let mut next = vec![0usize; n];
    let mut events = Vec::new();
    let mut per_tasklet = vec![Cycles::ZERO; n];
    let mut queue = VirtualTimeQueue::new(dpu, (0..n).filter(|&t| !streams[t].is_empty()));
    while let Some(tid) = queue.pop(dpu) {
        let (u, v) = streams[tid][next[tid]];
        next[tid] += 1;
        for latency in insert(dpu, tid, u, v) {
            events.push((dpu.clock(tid), latency));
            per_tasklet[tid] += latency;
        }
        if next[tid] < streams[tid].len() {
            queue.push(dpu, tid);
        }
    }
    (events, per_tasklet)
}

/// An allocator that may be transparently wrapped in a trace recorder
/// (recording never perturbs the run: the recorder only reads clocks).
enum MaybeRecorded {
    Plain(Box<dyn PimAllocator>),
    Recording(Box<pim_trace::TraceRecorder<Box<dyn PimAllocator>>>),
}

impl MaybeRecorded {
    fn new(inner: Box<dyn PimAllocator>, record: Option<&GraphUpdateConfig>) -> Self {
        match record {
            Some(cfg) => {
                let name = match cfg.repr {
                    GraphRepr::StaticCsr => "graph/static-csr",
                    GraphRepr::LinkedList => "graph/linked-list",
                    GraphRepr::VarArray => "graph/var-array",
                };
                MaybeRecorded::Recording(Box::new(pim_trace::TraceRecorder::new(
                    inner,
                    name,
                    cfg.heap_size,
                    cfg.n_tasklets,
                )))
            }
            None => MaybeRecorded::Plain(inner),
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn PimAllocator {
        match self {
            MaybeRecorded::Plain(a) => a.as_mut(),
            MaybeRecorded::Recording(r) => r.as_mut(),
        }
    }

    fn as_dyn(&self) -> &dyn PimAllocator {
        match self {
            MaybeRecorded::Plain(a) => a.as_ref(),
            MaybeRecorded::Recording(r) => r.as_ref(),
        }
    }

    fn into_trace(self) -> Option<pim_trace::AllocTrace> {
        match self {
            MaybeRecorded::Plain(_) => None,
            MaybeRecorded::Recording(r) => Some(r.into_trace().0),
        }
    }
}

/// Runs the graph update experiment.
pub fn run_graph_update(cfg: &GraphUpdateConfig) -> GraphUpdateResult {
    run_graph_update_impl(cfg, false).0
}

/// [`run_graph_update`], additionally capturing DPU 0's allocator
/// activity during the timed update phase as an
/// [`pim_trace::AllocTrace`] (compute between allocator calls becomes
/// `Compute` events, so the trace replays with the workload's pacing).
///
/// # Panics
///
/// Panics for [`GraphRepr::StaticCsr`], which never allocates.
pub fn run_graph_update_recorded(
    cfg: &GraphUpdateConfig,
) -> (GraphUpdateResult, pim_trace::AllocTrace) {
    assert!(
        !matches!(cfg.repr, GraphRepr::StaticCsr),
        "static CSR never calls the allocator; record a dynamic repr"
    );
    let (result, trace) = run_graph_update_impl(cfg, true);
    (result, trace.expect("dynamic repr on DPU 0 records"))
}

fn run_graph_update_impl(
    cfg: &GraphUpdateConfig,
    record: bool,
) -> (GraphUpdateResult, Option<pim_trace::AllocTrace>) {
    let w = workload(cfg);
    let local_nodes = cfg.n_nodes.div_ceil(cfg.n_dpus as u32);
    let mhz = pim_sim::CostModel::default().clock_mhz;

    // Host staging: each new edge is an 8 B (u, v) record pushed to
    // the DPU that owns its source node — a naturally non-uniform
    // per-DPU plan (power-law graphs skew edges across partitions).
    let staging = {
        let mut edges_per_dpu = vec![0u64; cfg.n_dpus];
        for &(u, _) in &w.new_edges {
            let (dpu, _, _) = place(u, cfg.n_dpus, cfg.n_tasklets);
            edges_per_dpu[dpu] += 1;
        }
        let mut plan = TransferPlan::new(TransferDirection::HostToPim);
        for (dpu, &edges) in edges_per_dpu.iter().enumerate() {
            plan.push(dpu, edges * 8);
        }
        cfg.ctx.planner().estimate(&plan)
    };

    #[derive(Debug)]
    struct DpuOutcome {
        update: Cycles,
        breakdown: TaskletStats,
        meta: u64,
        dram: u64,
        events: Vec<(Cycles, Cycles)>,
        per_tasklet: Vec<Cycles>,
        frontend_hits: u64,
        total_mallocs: u64,
        cycles_frontend: Cycles,
        cycles_backend: Cycles,
        frag: Option<f64>,
        trace: Option<pim_trace::AllocTrace>,
    }

    let run_one_dpu = |dpu_idx: usize| -> DpuOutcome {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(cfg.n_tasklets));
        let base = dpu_streams(&w.base.edges, dpu_idx, cfg);
        let new = dpu_streams(&w.new_edges, dpu_idx, cfg);
        let new_count: usize = new.iter().map(Vec::len).sum();
        assert!(new_count > 0, "every DPU must receive new edges");

        match cfg.repr {
            GraphRepr::StaticCsr => {
                // Bulk-build the CSR (untimed), then timed locked inserts.
                let local_edges: Vec<(u32, u32)> = base.iter().flatten().copied().collect();
                let mut csr = CsrGraph::build(local_nodes, &local_edges);
                let mutex = dpu.alloc_mutex();
                let t0 = dpu.max_clock();
                for t in 0..cfg.n_tasklets {
                    dpu.ctx(t).wait_until(t0);
                }
                let stats0 = dpu.total_stats();
                run_phase(&mut dpu, &new, |dpu, tid, u, v| {
                    let mut ctx = dpu.ctx(tid);
                    ctx.mutex_lock(mutex);
                    csr.insert(&mut ctx, u, v);
                    ctx.mutex_unlock(mutex);
                    Vec::new()
                });
                DpuOutcome {
                    update: dpu.max_clock() - t0,
                    breakdown: dpu.total_stats().since(&stats0),
                    meta: 0,
                    dram: dpu.traffic().total_bytes(),
                    events: Vec::new(),
                    per_tasklet: vec![Cycles::ZERO; cfg.n_tasklets],
                    frontend_hits: 0,
                    total_mallocs: 0,
                    cycles_frontend: Cycles::ZERO,
                    cycles_backend: Cycles::ZERO,
                    frag: None,
                    trace: None,
                }
            }
            GraphRepr::LinkedList | GraphRepr::VarArray => {
                // The pre-update graph stays in its bulk-loaded static
                // form (standard streaming-graph design: CSR base +
                // dynamic delta); the *new* edges go into an initially
                // empty dynamic structure, so each first touch of a
                // node during the timed phase allocates — the
                // allocation rate the paper's Figure 17 exhibits.
                let _base_csr = {
                    let local_edges: Vec<(u32, u32)> = base.iter().flatten().copied().collect();
                    CsrGraph::build(local_nodes, &local_edges)
                };
                let built = cfg.allocator.build(&mut dpu, cfg.n_tasklets, cfg.heap_size);
                // Only DPU 0's allocator is recorded — its timeline is
                // the one the figures single out, and one DPU's stream
                // is the SPMD unit a replay fans back out.
                let mut alloc = MaybeRecorded::new(built, (record && dpu_idx == 0).then_some(cfg));
                enum Repr {
                    Ll(LinkedListGraph),
                    Va(VarArrayGraph),
                }
                let mut graph = match cfg.repr {
                    GraphRepr::LinkedList => Repr::Ll(LinkedListGraph::new(local_nodes)),
                    _ => Repr::Va(VarArrayGraph::new(local_nodes)),
                };
                let mut do_insert = |dpu: &mut DpuSim,
                                     alloc: &mut dyn PimAllocator,
                                     tid: usize,
                                     u: u32,
                                     v: u32|
                 -> Vec<Cycles> {
                    let before = alloc.alloc_stats().malloc_latencies.len();
                    let mut ctx = dpu.ctx(tid);
                    match &mut graph {
                        Repr::Ll(g) => g.insert(&mut ctx, alloc, u, v).expect("heap sized"),
                        Repr::Va(g) => g.insert(&mut ctx, alloc, u, v).expect("heap sized"),
                    }
                    alloc.alloc_stats().malloc_latencies.samples()[before..].to_vec()
                };
                // Barrier, then timed update phase on the empty delta.
                let t0 = dpu.max_clock();
                for t in 0..cfg.n_tasklets {
                    dpu.ctx(t).wait_until(t0);
                }
                let stats0 = dpu.total_stats();
                let (events, per_tasklet) = run_phase(&mut dpu, &new, |dpu, tid, u, v| {
                    do_insert(dpu, alloc.as_dyn_mut(), tid, u, v)
                });
                let s = alloc.as_dyn().alloc_stats();
                let (frontend_hits, total_mallocs, cycles_frontend, cycles_backend) = (
                    s.frontend_hits,
                    s.total_mallocs(),
                    s.cycles_frontend,
                    s.cycles_backend,
                );
                DpuOutcome {
                    update: dpu.max_clock() - t0,
                    breakdown: dpu.total_stats().since(&stats0),
                    // Whole-run metadata traffic (build + update),
                    // matching Figure 17(d)'s aggregate comparison.
                    meta: allocator_meta_bytes(alloc.as_dyn()),
                    dram: dpu.traffic().total_bytes(),
                    // Re-base event times onto the update phase origin.
                    events: events
                        .into_iter()
                        .map(|(t, l)| (t.saturating_sub(t0), l))
                        .collect(),
                    per_tasklet,
                    frontend_hits,
                    total_mallocs,
                    cycles_frontend,
                    cycles_backend,
                    frag: alloc
                        .as_dyn()
                        .as_any()
                        .downcast_ref::<pim_malloc::PimMalloc>()
                        .map(|pm| pm.frag().ratio()),
                    trace: alloc.into_trace(),
                }
            }
        }
    };

    // Per-DPU simulations are share-nothing; fan them out over the
    // graph engine's own persistent executor (its sticky ledger tracks
    // *this* engine's DPU indices, not unrelated sweeps) and reduce in
    // DPU-index order for determinism.
    let (mut outcomes, placement): (Vec<DpuOutcome>, _) =
        Executor::for_domain("graph-update").run_report(cfg.n_dpus, cfg.ctx.exec, run_one_dpu);
    let trace = outcomes[0].trace.take();

    let mut slowest = Cycles::ZERO;
    let mut breakdown = TaskletStats::default();
    let mut meta_bytes = 0u64;
    let mut dram_bytes = 0u64;
    let mut frontend_hits = 0u64;
    let mut total_mallocs = 0u64;
    let mut cycles_frontend = Cycles::ZERO;
    let mut cycles_backend = Cycles::ZERO;
    let mut frag_sum = 0.0;
    let mut frag_n = 0u32;
    for o in &outcomes {
        slowest = slowest.max(o.update);
        breakdown = breakdown.merged(&o.breakdown);
        meta_bytes += o.meta;
        dram_bytes += o.dram;
        frontend_hits += o.frontend_hits;
        total_mallocs += o.total_mallocs;
        cycles_frontend += o.cycles_frontend;
        cycles_backend += o.cycles_backend;
        if let Some(f) = o.frag {
            frag_sum += f;
            frag_n += 1;
        }
    }
    let alloc_timeline: Vec<(f64, f64)> = outcomes[0]
        .events
        .iter()
        .map(|&(t, l)| (t.as_millis(mhz), l.as_micros(mhz)))
        .collect();
    let per_tasklet_malloc_us: Vec<f64> = outcomes[0]
        .per_tasklet
        .iter()
        .map(|c| c.as_micros(mhz))
        .collect();

    let update_secs = slowest.as_secs(mhz);
    let total_latency = (cycles_frontend + cycles_backend).0 as f64;
    let result = GraphUpdateResult {
        repr: cfg.repr,
        allocator: cfg.allocator,
        update_secs,
        throughput_meps: cfg.new_edges as f64 / update_secs / 1e6,
        breakdown,
        alloc_timeline,
        per_tasklet_malloc_us,
        meta_bytes,
        dram_bytes,
        frontend_fraction: if total_mallocs == 0 {
            0.0
        } else {
            frontend_hits as f64 / total_mallocs as f64
        },
        backend_latency_fraction: if total_latency == 0.0 {
            0.0
        } else {
            cycles_backend.0 as f64 / total_latency
        },
        total_mallocs,
        frag_ratio: if frag_n == 0 {
            0.0
        } else {
            frag_sum / f64::from(frag_n)
        },
        host_push_secs: staging.secs,
        host_xfer_calls: staging.calls,
        host_placement_secs: placement.placement_penalty_secs(&cfg.ctx.transfer),
    };
    (result, trace)
}

fn allocator_meta_bytes(alloc: &dyn PimAllocator) -> u64 {
    if let Some(pm) = alloc.as_any().downcast_ref::<pim_malloc::PimMalloc>() {
        pm.metadata_stats().total_bytes()
    } else if let Some(sm) = alloc
        .as_any()
        .downcast_ref::<pim_malloc::StrawManAllocator>()
    {
        sm.buddy().store().stats().total_bytes()
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(repr: GraphRepr, allocator: AllocatorKind) -> GraphUpdateConfig {
        // Gowalla-shaped sparsity (avg degree ~4.7) so the timed phase
        // first-touches many nodes and actually allocates.
        GraphUpdateConfig {
            repr,
            allocator,
            n_dpus: 4,
            n_tasklets: 16,
            n_nodes: 2048,
            base_edges: 6400,
            new_edges: 3200,
            heap_size: 32 << 20,
            ctx: SimContext::default().with_seed(7),
        }
    }

    #[test]
    fn dynamic_sw_beats_static_csr() {
        let stat = run_graph_update(&small(GraphRepr::StaticCsr, AllocatorKind::Sw));
        let dyn_ll = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::Sw));
        assert!(
            dyn_ll.throughput_meps > stat.throughput_meps,
            "LL+SW {} must beat static {}",
            dyn_ll.throughput_meps,
            stat.throughput_meps
        );
    }

    #[test]
    fn straw_man_dynamic_loses_to_static() {
        // Figure 17(a): the straw-man allocator makes the dynamic
        // structure slower than the static baseline.
        let stat = run_graph_update(&small(GraphRepr::StaticCsr, AllocatorKind::Sw));
        let dyn_straw = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::StrawMan));
        assert!(
            dyn_straw.throughput_meps < stat.throughput_meps,
            "straw-man {} must lose to static {}",
            dyn_straw.throughput_meps,
            stat.throughput_meps
        );
    }

    #[test]
    fn vararray_outpaces_linked_list() {
        let ll = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::HwSw));
        let va = run_graph_update(&small(GraphRepr::VarArray, AllocatorKind::HwSw));
        assert!(
            va.throughput_meps > ll.throughput_meps,
            "vararray {} vs LL {}",
            va.throughput_meps,
            ll.throughput_meps
        );
    }

    #[test]
    fn hwsw_moves_less_metadata_than_sw() {
        // Figure 17(d): the buddy cache cuts metadata DRAM traffic.
        let sw = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::Sw));
        let hw = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::HwSw));
        assert!(
            hw.meta_bytes < sw.meta_bytes,
            "HW/SW {} must move less than SW {}",
            hw.meta_bytes,
            sw.meta_bytes
        );
    }

    #[test]
    fn frontend_services_most_requests() {
        // Figure 11(a): ~90+% of graph-update mallocs hit the frontend.
        let r = run_graph_update(&small(GraphRepr::LinkedList, AllocatorKind::Sw));
        assert!(
            r.frontend_fraction > 0.8,
            "frontend fraction {}",
            r.frontend_fraction
        );
        assert!(r.total_mallocs > 0);
    }

    #[test]
    fn edge_staging_is_cheaper_sharded_than_per_dpu() {
        // Every new edge is staged exactly once (8 B per edge), and
        // per-rank sharding beats per-DPU calls on call overhead while
        // moving the same bytes.
        let sharded = small(GraphRepr::LinkedList, AllocatorKind::Sw);
        let per_dpu = GraphUpdateConfig {
            ctx: sharded.ctx.with_batching(pim_sim::HostBatching::PerDpu),
            ..sharded
        };
        let s = run_graph_update(&sharded);
        let p = run_graph_update(&per_dpu);
        assert!(s.host_push_secs > 0.0);
        assert!(s.host_push_secs <= p.host_push_secs);
        assert!(s.host_xfer_calls <= p.host_xfer_calls);
        assert_eq!(p.host_xfer_calls, 4, "4 DPUs, one call each");
        // The kernel-side result is untouched by the host schedule.
        assert_eq!(s.update_secs, p.update_secs);
        assert_eq!(s.total_mallocs, p.total_mallocs);
    }

    #[test]
    fn recorded_update_captures_dpu0_allocations() {
        let cfg = small(GraphRepr::LinkedList, AllocatorKind::Sw);
        let (plain, trace) = {
            let (r, t) = run_graph_update_recorded(&cfg);
            (r, t)
        };
        // Recording never perturbs the run.
        let unrecorded = run_graph_update(&cfg);
        assert_eq!(plain.update_secs, unrecorded.update_secs);
        assert_eq!(plain.total_mallocs, unrecorded.total_mallocs);
        // The trace holds DPU 0's mallocs with compute pacing and
        // round-trips through JSON.
        assert!(trace.malloc_count() > 0);
        assert!(trace
            .streams
            .iter()
            .flatten()
            .any(|op| matches!(op, pim_trace::TraceOp::Compute { .. })));
        assert_eq!(
            pim_trace::AllocTrace::from_json(&trace.to_json()).unwrap(),
            trace
        );
    }

    #[test]
    #[should_panic(expected = "never calls the allocator")]
    fn recording_static_csr_is_rejected() {
        let cfg = small(GraphRepr::StaticCsr, AllocatorKind::Sw);
        let _ = run_graph_update_recorded(&cfg);
    }

    #[test]
    fn static_breakdown_is_memory_and_wait_bound() {
        let r = run_graph_update(&small(GraphRepr::StaticCsr, AllocatorKind::Sw));
        let (_run, busy, idle_mem, _etc) = r.breakdown.fractions();
        assert!(
            busy + idle_mem > 0.5,
            "CSR shifts serialize on the mutex and DMA: busy={busy} mem={idle_mem}"
        );
    }

    #[test]
    fn update_cost_independent_of_base_size_for_dynamic() {
        // Figure 3(c): dynamic update throughput is flat in pre-update
        // size; static degrades.
        let mut cfg = small(GraphRepr::LinkedList, AllocatorKind::Sw);
        cfg.base_edges = 2000;
        let small_g = run_graph_update(&cfg);
        cfg.base_edges = 16_000;
        let large_g = run_graph_update(&cfg);
        let dyn_ratio = small_g.throughput_meps / large_g.throughput_meps;
        assert!(
            dyn_ratio < 2.0,
            "dynamic must be nearly flat, ratio {dyn_ratio}"
        );

        let mut cfg = small(GraphRepr::StaticCsr, AllocatorKind::Sw);
        cfg.base_edges = 2000;
        let small_s = run_graph_update(&cfg);
        cfg.base_edges = 48_000;
        let large_s = run_graph_update(&cfg);
        let stat_ratio = small_s.throughput_meps / large_s.throughput_meps;
        assert!(
            stat_ratio > 2.0,
            "static must degrade with size, ratio {stat_ratio}"
        );
    }
}
