//! Variable-sized-array dynamic graph representation (Hornet-style).
//!
//! Each local node's adjacency is one power-of-two-sized edge array.
//! Appending is a single MRAM write; when the array fills, a new array
//! of twice the size is allocated, the old edges are copied over with
//! streaming DMA, and the old array is freed. Allocation sizes range
//! from 64 B up to tens of KB (the paper reports 64 B – 32 KB on
//! gowalla), exercising both the thread cache and the bypass path.

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{Mram, TaskletCtx};

/// Smallest edge array (16 edges).
pub const MIN_ARRAY_BYTES: u32 = 64;
/// Streaming chunk for grow-copies.
const COPY_CHUNK: u32 = 2048;
/// Instructions of insert bookkeeping besides DMA.
const INSERT_INSTRS: u64 = 8;

#[derive(Debug, Clone, Copy)]
struct NodeArray {
    addr: u32,
    cap_bytes: u32,
    count: u32,
}

/// A variable-sized-array graph over `n` local nodes.
#[derive(Debug, Clone)]
pub struct VarArrayGraph {
    nodes: Vec<Option<NodeArray>>,
    total_edges: u64,
    grows: u64,
}

impl VarArrayGraph {
    /// Creates an empty graph of `n_nodes` local nodes.
    pub fn new(n_nodes: u32) -> Self {
        VarArrayGraph {
            nodes: vec![None; n_nodes as usize],
            total_edges: 0,
            grows: 0,
        }
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> u64 {
        self.total_edges
    }

    /// Number of grow-reallocate events so far.
    pub fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Largest allocation this graph has requested so far, in bytes.
    pub fn max_array_bytes(&self) -> u32 {
        self.nodes
            .iter()
            .flatten()
            .map(|a| a.cap_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Inserts edge `(u, v)`, growing `u`'s array if needed.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from array (re)allocation.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn insert(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        alloc: &mut dyn PimAllocator,
        u: u32,
        v: u32,
    ) -> Result<(), AllocError> {
        let ui = u as usize;
        ctx.instrs(INSERT_INSTRS);
        // Read the node-table entry.
        ctx.mram_read(0, 8);
        let entry = match self.nodes[ui] {
            None => {
                let addr = alloc.pim_malloc(ctx, MIN_ARRAY_BYTES)?;
                let e = NodeArray {
                    addr,
                    cap_bytes: MIN_ARRAY_BYTES,
                    count: 0,
                };
                self.nodes[ui] = Some(e);
                ctx.mram_write(0, 8); // node-table writeback
                e
            }
            Some(e) if e.count * 4 == e.cap_bytes => {
                // Grow: allocate 2×, stream-copy, free the old array.
                let new_cap = e.cap_bytes * 2;
                let new_addr = alloc.pim_malloc(ctx, new_cap)?;
                let mut copied = 0u32;
                while copied < e.count * 4 {
                    let chunk = (e.count * 4 - copied).min(COPY_CHUNK);
                    // Latency-only transfer plus the real byte move.
                    let mut buf = vec![0u8; chunk as usize];
                    ctx.mram_read_bytes(e.addr + copied, &mut buf);
                    ctx.mram_write_bytes(new_addr + copied, &buf);
                    copied += chunk;
                }
                alloc.pim_free(ctx, e.addr)?;
                self.grows += 1;
                let grown = NodeArray {
                    addr: new_addr,
                    cap_bytes: new_cap,
                    count: e.count,
                };
                self.nodes[ui] = Some(grown);
                ctx.mram_write(0, 8);
                grown
            }
            Some(e) => e,
        };
        // Append the edge (one 8 B DMA beat). The per-node count lives
        // in the WRAM-cached node table and is written back lazily at
        // kernel end — unlike the linked list, whose chunk headers must
        // stay self-describing in MRAM, this makes the steady-state
        // append a single MRAM write (why the paper's variable-sized
        // array reaches 32× over static vs the linked list's 7.1×).
        ctx.mram_write_bytes(entry.addr + entry.count * 4, &v.to_le_bytes());
        self.nodes[ui].as_mut().expect("just ensured").count += 1;
        self.total_edges += 1;
        Ok(())
    }

    /// Reads every `(node, dst)` edge back out of the MRAM image.
    pub fn read_back(&self, mram: &Mram) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (node, entry) in self.nodes.iter().enumerate() {
            if let Some(e) = entry {
                for slot in 0..e.count {
                    out.push((node as u32, mram.read_u32(e.addr + slot * 4)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_sim::{DpuConfig, DpuSim};

    fn setup() -> (DpuSim, Box<dyn PimAllocator>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let alloc = AllocatorKind::Sw.build(&mut dpu, 1, 4 << 20);
        (dpu, alloc)
    }

    #[test]
    fn arrays_double_on_overflow() {
        let (mut dpu, mut alloc) = setup();
        let mut g = VarArrayGraph::new(1);
        for v in 0..100u32 {
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), 0, v).unwrap();
        }
        // 16 → 32 → 64 → 128 slots: 3 grows for 100 edges.
        assert_eq!(g.grow_count(), 3);
        assert_eq!(g.max_array_bytes(), 512);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn read_back_preserves_order_and_content() {
        let (mut dpu, mut alloc) = setup();
        let mut g = VarArrayGraph::new(4);
        let mut expect = Vec::new();
        for i in 0..300u32 {
            let (u, v) = (i % 4, i.wrapping_mul(2654435761) % 1000);
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), u, v).unwrap();
            expect.push((u, v));
        }
        let mut got = g.read_back(dpu.mram());
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "grow-copies must preserve every edge");
    }

    #[test]
    fn grow_copy_frees_the_old_array() {
        let (mut dpu, mut alloc) = setup();
        let mut g = VarArrayGraph::new(1);
        for v in 0..17u32 {
            // 17th insert grows 16 → 32 slots.
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), 0, v).unwrap();
        }
        assert_eq!(g.grow_count(), 1);
        // allocs: initial + grow = 2; frees: 1 (the old array).
        let stats = alloc.alloc_stats();
        assert_eq!(stats.total_mallocs(), 2);
        assert_eq!(stats.frees_frontend + stats.frees_backend, 1);
    }

    #[test]
    fn large_nodes_reach_bypass_sizes() {
        let (mut dpu, mut alloc) = setup();
        let mut g = VarArrayGraph::new(1);
        for v in 0..2000u32 {
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), 0, v).unwrap();
        }
        // 2000 edges → 8192 B array: beyond the 2 KB size class.
        assert!(g.max_array_bytes() >= 8192);
        assert!(
            alloc.alloc_stats().bypass > 0,
            "big arrays must bypass the cache"
        );
    }

    #[test]
    fn append_is_cheaper_than_linked_list_insert() {
        // Why the paper's variable-sized array beats the linked list
        // (32× vs 7.1× over static): steady-state append is one write.
        let (mut dpu1, mut a1) = setup();
        let mut va = VarArrayGraph::new(1);
        // Warm up so appends are steady-state.
        for v in 0..20u32 {
            let mut ctx = dpu1.ctx(0);
            va.insert(&mut ctx, a1.as_mut(), 0, v).unwrap();
        }
        let mut ctx = dpu1.ctx(0);
        let t0 = ctx.now();
        va.insert(&mut ctx, a1.as_mut(), 0, 99).unwrap();
        let va_cost = (ctx.now() - t0).0;

        let (mut dpu2, mut a2) = setup();
        let mut ll = super::super::linked::LinkedListGraph::new(1);
        for v in 0..20u32 {
            let mut ctx = dpu2.ctx(0);
            ll.insert(&mut ctx, a2.as_mut(), 0, v).unwrap();
        }
        let mut ctx = dpu2.ctx(0);
        let t0 = ctx.now();
        ll.insert(&mut ctx, a2.as_mut(), 0, 99).unwrap();
        let ll_cost = (ctx.now() - t0).0;
        assert!(
            va_cost < ll_cost,
            "vararray {va_cost} vs linked list {ll_cost}"
        );
    }
}
