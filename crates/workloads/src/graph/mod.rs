//! Dynamic graph update — case study #1 of the paper (§III-A, §VI-B).
//!
//! A synthetic power-law graph stands in for loc-gowalla (see
//! [`generator`]); the update workload samples 1/3 of its edges as
//! "new" and inserts them under three representations:
//!
//! * [`csr::CsrGraph`] — the static baseline, which must shift its
//!   arrays on every insert;
//! * [`linked::LinkedListGraph`] — fixed 256 B chunks allocated with
//!   `pim_malloc`;
//! * [`vararray::VarArrayGraph`] — power-of-two edge arrays grown by
//!   doubling.
//!
//! [`update::run_graph_update`] drives the experiment across DPUs and
//! tasklets and reports the Figure 17 metrics.

pub mod csr;
pub mod generator;
pub mod linked;
pub mod update;
pub mod vararray;

pub use generator::{
    generate_power_law, split_for_update, split_for_update_count, Graph, UpdateWorkload,
};
pub use update::{
    run_graph_update, run_graph_update_recorded, GraphRepr, GraphUpdateConfig, GraphUpdateResult,
};
