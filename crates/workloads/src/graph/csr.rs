//! Static CSR graph representation with in-place edge insertion.
//!
//! The paper's static baseline (Figure 3(b), top): the graph lives in
//! two MRAM-resident arrays, `NodePtr` and `EdgeIdx`. Inserting one
//! edge `(u, v)` requires shifting the entire `EdgeIdx` tail after
//! `u`'s segment and incrementing every `NodePtr` entry past `u` —
//! O(graph size) of DMA traffic per insertion, which is why static
//! update cost grows with the pre-update graph (Figure 3(c)).

use pim_sim::TaskletCtx;

/// Streaming DMA chunk used for the shifts.
const CHUNK_BYTES: u32 = 2048;
/// Instructions per chunk of the edge shift: the 4-byte shift is done
/// by DMA-reading into the WRAM staging buffer at offset +4 and
/// DMA-writing the realigned result, so only the two boundary words
/// and the loop need instructions.
const SHIFT_FIXUP_INSTRS: u64 = 12;
/// Instructions per 4-byte `NodePtr` entry of the increment pass —
/// a genuine read-modify-write (load, add, store) per entry.
const INCREMENT_INSTRS_PER_ENTRY: u64 = 3;

/// A CSR graph over `n` local nodes, with host-side shadow arrays and
/// DMA-accurate insertion costs.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    node_ptr: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrGraph {
    /// Builds the CSR arrays from `(local_node, dst)` pairs — the
    /// bulk-build step that happens once, before timed updates.
    pub fn build(n_nodes: u32, edge_list: &[(u32, u32)]) -> Self {
        let n = n_nodes as usize;
        let mut counts = vec![0u32; n + 1];
        for &(u, _) in edge_list {
            counts[u as usize + 1] += 1;
        }
        let mut node_ptr = vec![0u32; n + 1];
        for i in 1..=n {
            node_ptr[i] = node_ptr[i - 1] + counts[i];
        }
        let mut cursor = node_ptr.clone();
        let mut edges = vec![0u32; edge_list.len()];
        for &(u, v) in edge_list {
            edges[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        CsrGraph { node_ptr, edges }
    }

    /// Number of edges currently stored.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The neighbours of `node`, in storage order.
    pub fn neighbours(&self, node: u32) -> &[u32] {
        let a = self.node_ptr[node as usize] as usize;
        let b = self.node_ptr[node as usize + 1] as usize;
        &self.edges[a..b]
    }

    /// Charges the `EdgeIdx` tail shift: DMA-dominated streaming copy
    /// with per-chunk boundary fix-up.
    fn charge_shift(ctx: &mut TaskletCtx<'_>, bytes: u64) {
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(u64::from(CHUNK_BYTES)) as u32;
            ctx.mram_read(0, chunk);
            ctx.mram_write(0, chunk);
            ctx.instrs(SHIFT_FIXUP_INSTRS);
            remaining -= u64::from(chunk);
        }
    }

    /// Charges the `NodePtr` increment pass: stream each chunk in,
    /// increment every entry, stream it back.
    fn charge_increment(ctx: &mut TaskletCtx<'_>, bytes: u64) {
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(u64::from(CHUNK_BYTES)) as u32;
            ctx.mram_read(0, chunk);
            ctx.instrs((u64::from(chunk) / 4) * INCREMENT_INSTRS_PER_ENTRY + 4);
            ctx.mram_write(0, chunk);
            remaining -= u64::from(chunk);
        }
    }

    /// Inserts edge `(u, v)`, shifting `EdgeIdx` and updating
    /// `NodePtr` with DMA-accurate costs.
    ///
    /// Callers serialize insertions with a DPU mutex — concurrent
    /// whole-array shifts cannot overlap.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn insert(&mut self, ctx: &mut TaskletCtx<'_>, u: u32, v: u32) {
        let ui = u as usize;
        assert!(ui + 1 < self.node_ptr.len(), "node {u} out of range");
        let pos = self.node_ptr[ui + 1] as usize;
        // Shift the EdgeIdx tail one slot right.
        let tail_bytes = (self.edges.len() - pos) as u64 * 4;
        Self::charge_shift(ctx, tail_bytes);
        self.edges.insert(pos, v);
        // Increment every NodePtr entry after u (read-modify-write).
        let ptr_bytes = (self.node_ptr.len() - (ui + 1)) as u64 * 4;
        Self::charge_increment(ctx, ptr_bytes);
        for p in &mut self.node_ptr[ui + 1..] {
            *p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    #[test]
    fn build_matches_figure3_example() {
        // Figure 3(b) pre-update CSR: edges 0→1,0→3, 1→3, 3→1,3→3(…)
        let g = CsrGraph::build(5, &[(0, 1), (0, 3), (1, 3), (3, 1), (4, 3)]);
        assert_eq!(g.neighbours(0), &[1, 3]);
        assert_eq!(g.neighbours(1), &[3]);
        assert_eq!(g.neighbours(2), &[] as &[u32]);
        assert_eq!(g.neighbours(3), &[1]);
        assert_eq!(g.neighbours(4), &[3]);
    }

    #[test]
    fn insert_preserves_adjacency() {
        let mut d = dpu();
        let mut g = CsrGraph::build(4, &[(0, 1), (2, 3)]);
        let mut ctx = d.ctx(0);
        g.insert(&mut ctx, 0, 2); // the Figure 3(a) red edge
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(2), &[3]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn insertion_cost_grows_with_graph_size() {
        // Figure 3(c): same insertion, bigger pre-update graph, more
        // cycles.
        let mut costs = Vec::new();
        for scale in [100usize, 1000, 10000] {
            let edge_list: Vec<(u32, u32)> = (0..scale)
                .map(|i| ((i % 50) as u32, (i % 49) as u32))
                .collect();
            let mut d = dpu();
            let mut g = CsrGraph::build(50, &edge_list);
            let mut ctx = d.ctx(0);
            let t0 = ctx.now();
            g.insert(&mut ctx, 0, 1);
            costs.push((ctx.now() - t0).0);
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
        assert!(
            costs[2] > costs[0] * 10,
            "two decades of size must dominate the fixed cost: {costs:?}"
        );
    }

    #[test]
    fn inserting_at_last_node_is_cheapest() {
        let edge_list: Vec<(u32, u32)> = (0..5000).map(|i| ((i % 100) as u32, 7)).collect();
        let mut d = dpu();
        let mut g = CsrGraph::build(100, &edge_list);
        let mut ctx = d.ctx(0);
        let t0 = ctx.now();
        g.insert(&mut ctx, 0, 1);
        let front = (ctx.now() - t0).0;
        let t0 = ctx.now();
        g.insert(&mut ctx, 99, 1);
        let back = (ctx.now() - t0).0;
        assert!(back < front, "tail insert shifts less: {back} vs {front}");
    }
}
