//! Array-of-linked-lists dynamic graph representation.
//!
//! Each local node's adjacency is a linked list of fixed-size 256 B
//! chunks (the paper's "array of linked lists", after faimGraph):
//! `[next: u32][count: u32][edges: u32 × 62]`. Inserting an edge reads
//! the head chunk's header, appends into it, or allocates a fresh
//! chunk via `pim_malloc` when the head is full — allocation cost is
//! the allocator's problem, which is exactly what Figure 17 measures.
//!
//! Edges are **really stored in simulated MRAM**, so tests can walk
//! the pointer structure back out of the memory image and verify no
//! edge was lost.

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{Mram, TaskletCtx};

/// Chunk size in bytes (the paper's constant allocation size).
pub const CHUNK_BYTES: u32 = 256;
/// Header: next pointer (4 B) + in-chunk edge count (4 B).
const HEADER_BYTES: u32 = 8;
/// Edges per chunk.
pub const EDGES_PER_CHUNK: u32 = (CHUNK_BYTES - HEADER_BYTES) / 4;
/// Sentinel for "no next chunk".
const NIL: u32 = u32::MAX;

/// Instructions of insert bookkeeping besides DMA.
const INSERT_INSTRS: u64 = 10;

/// An array-of-linked-lists graph over `n` local nodes.
#[derive(Debug, Clone)]
pub struct LinkedListGraph {
    /// Per-node head chunk address (NIL when empty) — the node table
    /// itself would live in MRAM; we keep the shadow and charge DMA.
    heads: Vec<u32>,
    /// Cached count of the head chunk, mirroring the header in MRAM.
    head_counts: Vec<u32>,
    total_edges: u64,
}

impl LinkedListGraph {
    /// Creates an empty graph of `n_nodes` local nodes.
    pub fn new(n_nodes: u32) -> Self {
        LinkedListGraph {
            heads: vec![NIL; n_nodes as usize],
            head_counts: vec![0; n_nodes as usize],
            total_edges: 0,
        }
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> u64 {
        self.total_edges
    }

    /// Inserts edge `(u, v)`: appends into `u`'s head chunk or
    /// allocates a new one via `alloc`.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from chunk allocation.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn insert(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        alloc: &mut dyn PimAllocator,
        u: u32,
        v: u32,
    ) -> Result<(), AllocError> {
        let ui = u as usize;
        ctx.instrs(INSERT_INSTRS);
        // Read the node-table entry (head pointer + cached count).
        ctx.mram_read(0, 8);
        let need_chunk = self.heads[ui] == NIL || self.head_counts[ui] == EDGES_PER_CHUNK;
        if need_chunk {
            let chunk = alloc.pim_malloc(ctx, CHUNK_BYTES)?;
            // Initialize the header: next = old head, count = 0.
            let next = self.heads[ui];
            ctx.mram_write_bytes(chunk, &[next.to_le_bytes(), 0u32.to_le_bytes()].concat());
            self.heads[ui] = chunk;
            self.head_counts[ui] = 0;
            // Write back the node-table entry.
            ctx.mram_write(0, 8);
        }
        let head = self.heads[ui];
        let slot = self.head_counts[ui];
        // Append the edge and bump the header count (one 8 B write
        // each — the DMA minimum).
        ctx.mram_write_bytes(head + HEADER_BYTES + slot * 4, &v.to_le_bytes());
        self.head_counts[ui] += 1;
        ctx.mram_write_bytes(head + 4, &self.head_counts[ui].to_le_bytes());
        self.total_edges += 1;
        Ok(())
    }

    /// Walks the chunk lists in the MRAM image and returns every
    /// stored `(node, dst)` edge — the integrity check used by tests.
    pub fn read_back(&self, mram: &Mram) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (node, &head) in self.heads.iter().enumerate() {
            let mut chunk = head;
            while chunk != NIL {
                let next = mram.read_u32(chunk);
                let count = mram.read_u32(chunk + 4);
                for slot in 0..count {
                    out.push((node as u32, mram.read_u32(chunk + HEADER_BYTES + slot * 4)));
                }
                chunk = next;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_sim::{DpuConfig, DpuSim};

    fn setup() -> (DpuSim, Box<dyn PimAllocator>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let alloc = AllocatorKind::Sw.build(&mut dpu, 1, 1 << 20);
        (dpu, alloc)
    }

    #[test]
    fn chunk_geometry_matches_paper() {
        assert_eq!(CHUNK_BYTES, 256);
        assert_eq!(EDGES_PER_CHUNK, 62);
    }

    #[test]
    fn first_insert_allocates_a_chunk() {
        let (mut dpu, mut alloc) = setup();
        let mut g = LinkedListGraph::new(4);
        let before = alloc.alloc_stats().total_mallocs();
        let mut ctx = dpu.ctx(0);
        g.insert(&mut ctx, alloc.as_mut(), 0, 3).unwrap();
        assert_eq!(alloc.alloc_stats().total_mallocs(), before + 1);
        // Second insert into the same node reuses the chunk.
        let mut ctx = dpu.ctx(0);
        g.insert(&mut ctx, alloc.as_mut(), 0, 2).unwrap();
        assert_eq!(alloc.alloc_stats().total_mallocs(), before + 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn overflow_links_a_new_chunk() {
        let (mut dpu, mut alloc) = setup();
        let mut g = LinkedListGraph::new(1);
        for v in 0..(EDGES_PER_CHUNK + 5) {
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), 0, v).unwrap();
        }
        assert_eq!(
            alloc.alloc_stats().total_mallocs(),
            2,
            "62+5 edges need 2 chunks"
        );
        let edges = g.read_back(dpu.mram());
        assert_eq!(edges.len(), (EDGES_PER_CHUNK + 5) as usize);
    }

    #[test]
    fn read_back_recovers_every_edge_exactly() {
        let (mut dpu, mut alloc) = setup();
        let mut g = LinkedListGraph::new(16);
        let mut expect = Vec::new();
        for i in 0..200u32 {
            let (u, v) = (i % 16, i * 7 % 100);
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), u, v).unwrap();
            expect.push((u, v));
        }
        let mut got = g.read_back(dpu.mram());
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(
            got, expect,
            "MRAM image must contain exactly the inserted edges"
        );
    }

    #[test]
    fn insert_cost_is_independent_of_graph_size() {
        // The dynamic representation's selling point (Figure 3(c)):
        // inserting into a graph with 10k edges costs the same as into
        // an empty one (amortized, chunk allocs aside).
        let (mut dpu, mut alloc) = setup();
        let mut g = LinkedListGraph::new(64);
        let mut ctx = dpu.ctx(0);
        let t0 = ctx.now();
        g.insert(&mut ctx, alloc.as_mut(), 0, 1).unwrap();
        let first = (ctx.now() - t0).0;
        for i in 0..5000u32 {
            let mut ctx = dpu.ctx(0);
            g.insert(&mut ctx, alloc.as_mut(), i % 64, i).unwrap();
        }
        let mut ctx = dpu.ctx(0);
        let t0 = ctx.now();
        g.insert(&mut ctx, alloc.as_mut(), 0, 2).unwrap();
        let late = (ctx.now() - t0).0;
        assert!(
            late <= first * 2,
            "insert cost must not grow with graph size: {first} vs {late}"
        );
    }
}
