//! Synthetic dynamic-graph workload generation.
//!
//! The paper uses loc-gowalla (197 k nodes, 950 k edges) and, following
//! prior dynamic-graph work, randomly samples edges of the static graph
//! to act as the *newly added* set, at a 1:2 new:existing ratio. We
//! cannot ship the SNAP dataset, so [`generate_power_law`] produces a
//! preferential-attachment graph with the same skewed degree shape at a
//! configurable scale, and [`split_for_update`] performs the paper's
//! random 1/3 sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected edge list over nodes `0..n_nodes` (stored directed,
/// one direction per edge, as the update workloads insert them).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of nodes.
    pub n_nodes: u32,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Out-degree of every node.
    pub fn degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_nodes as usize];
        for &(s, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }
}

/// Generates a preferential-attachment graph: `n_edges` edges over
/// `n_nodes` nodes where destination endpoints are drawn from existing
/// edges with high probability, producing a power-law-like in-degree
/// distribution (the gowalla shape).
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `n_nodes < 2` or `n_edges == 0`.
pub fn generate_power_law(n_nodes: u32, n_edges: usize, seed: u64) -> Graph {
    assert!(n_nodes >= 2, "need at least two nodes");
    assert!(n_edges > 0, "need at least one edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n_edges);
    edges.push((0, 1));
    while edges.len() < n_edges {
        let src = rng.gen_range(0..n_nodes);
        // Preferential attachment: with p=0.85 copy the destination of
        // an existing edge (probability ∝ in-degree), else uniform.
        let dst = if rng.gen_bool(0.85) {
            edges[rng.gen_range(0..edges.len())].1
        } else {
            rng.gen_range(0..n_nodes)
        };
        if src != dst {
            edges.push((src, dst));
        }
    }
    Graph { n_nodes, edges }
}

/// A dynamic-update workload: an existing (pre-update) graph plus the
/// edges to insert during the timed phase.
#[derive(Debug, Clone)]
pub struct UpdateWorkload {
    /// The pre-update graph.
    pub base: Graph,
    /// Edges inserted during the timed update phase.
    pub new_edges: Vec<(u32, u32)>,
}

/// Randomly samples `new_fraction` of the graph's edges as the "newly
/// added" set (paper: 1/3, i.e. new:existing = 1:2), deterministic for
/// a given `seed`.
///
/// # Panics
///
/// Panics unless `0 < new_fraction < 1`.
pub fn split_for_update(graph: Graph, new_fraction: f64, seed: u64) -> UpdateWorkload {
    assert!(
        new_fraction > 0.0 && new_fraction < 1.0,
        "fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = graph.edges;
    // Fisher–Yates prefix shuffle, then split.
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let n_new = ((edges.len() as f64) * new_fraction).round() as usize;
    let n_new = n_new.clamp(1, edges.len() - 1);
    let new_edges = edges.split_off(edges.len() - n_new);
    UpdateWorkload {
        base: Graph {
            n_nodes: graph.n_nodes,
            edges,
        },
        new_edges,
    }
}

/// Like [`split_for_update`], but samples exactly `n_new` edges as the
/// new set (used when the experiment fixes the new-edge count while
/// varying the pre-update size, as Figure 3(c) does).
///
/// # Panics
///
/// Panics unless `0 < n_new < graph.edges.len()`.
pub fn split_for_update_count(graph: Graph, n_new: usize, seed: u64) -> UpdateWorkload {
    assert!(
        n_new > 0 && n_new < graph.edges.len(),
        "n_new must leave a nonempty base"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = graph.edges;
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let new_edges = edges.split_off(edges.len() - n_new);
    UpdateWorkload {
        base: Graph {
            n_nodes: graph.n_nodes,
            edges,
        },
        new_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_split_is_exact() {
        let g = generate_power_law(100, 600, 5);
        let w = split_for_update_count(g, 123, 9);
        assert_eq!(w.new_edges.len(), 123);
        assert_eq!(w.base.edges.len(), 477);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_power_law(1000, 5000, 7);
        let b = generate_power_law(1000, 5000, 7);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.edges.len(), 5000);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_power_law(1000, 5000, 7);
        let b = generate_power_law(1000, 5000, 8);
        assert_ne!(a.edges, b.edges);
    }

    #[test]
    fn no_self_loops_and_in_range() {
        let g = generate_power_law(500, 3000, 42);
        for &(s, d) in &g.edges {
            assert_ne!(s, d);
            assert!(s < 500 && d < 500);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law shape: destinations are preferential, so the top
        // 10% of nodes by in-degree hold far more than 10% of edges.
        let g = generate_power_law(2000, 20000, 3);
        let mut indeg = vec![0u32; 2000];
        for &(_, t) in &g.edges {
            indeg[t as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = indeg[..200].iter().map(|&x| u64::from(x)).sum();
        let total: u64 = indeg.iter().map(|&x| u64::from(x)).sum();
        assert!(
            top as f64 / total as f64 > 0.3,
            "top-10% in-degree share {} too uniform",
            top as f64 / total as f64
        );
    }

    #[test]
    fn split_respects_one_to_two_ratio() {
        let g = generate_power_law(1000, 9000, 5);
        let w = split_for_update(g, 1.0 / 3.0, 11);
        assert_eq!(w.new_edges.len(), 3000);
        assert_eq!(w.base.edges.len(), 6000);
        // Ratio new:existing = 1:2.
        assert_eq!(w.base.edges.len(), 2 * w.new_edges.len());
    }

    #[test]
    fn split_is_a_partition_of_the_original() {
        let g = generate_power_law(100, 600, 5);
        let mut original = g.edges.clone();
        let w = split_for_update(g, 1.0 / 3.0, 11);
        let mut recombined = w.base.edges.clone();
        recombined.extend_from_slice(&w.new_edges);
        original.sort_unstable();
        recombined.sort_unstable();
        assert_eq!(original, recombined);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let g = generate_power_law(10, 20, 1);
        split_for_update(g, 1.5, 0);
    }
}
