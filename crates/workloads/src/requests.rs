//! Serving request classes derived from the evaluation workloads.
//!
//! Each generator packages one workload family's allocation shape as a
//! [`RequestClass`] for the open-loop frontend in `pim_serving`: a
//! small [`pim_trace::AllocTrace`] fragment (synthesized with the same
//! seeded generator the trace subsystem uses) plus the payload bytes
//! one request of that family ships host→PIM. Fragments are fixed-seed
//! so per-class calibration is stable; the *stream* randomness
//! (arrival times, class mixing) comes from the serving config's
//! [`pim_sim::SimContext::seed`].

use pim_serving::RequestClass;
use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

/// Fixed fragment seeds, one per family, so calibration never moves
/// under an unrelated seed change.
const MICRO_FRAGMENT_SEED: u64 = 0x5E21_0001;
const GRAPH_FRAGMENT_SEED: u64 = 0x5E21_0002;
const LLM_FRAGMENT_SEED: u64 = 0x5E21_0003;

/// Microbenchmark-shaped request: fixed 64 B allocations at a steady
/// pace (the Figure 15 shape), small payload.
pub fn micro_request() -> RequestClass {
    let trace = synthesize(&SynthConfig {
        n_tasklets: 8,
        mallocs_per_tasklet: 16,
        size_law: SizeLaw::Fixed(64),
        shape: TemporalShape::Steady { compute: 200 },
        heap_size: 1 << 20,
        seed: MICRO_FRAGMENT_SEED,
        ..SynthConfig::default()
    });
    RequestClass::new("micro", trace, 1 << 10, 1.0)
}

/// Graph-update-shaped request: zipf-sized allocations arriving in
/// bursts (edge insertions growing adjacency structures), shipping an
/// edge batch as payload.
pub fn graph_request() -> RequestClass {
    let trace = synthesize(&SynthConfig {
        n_tasklets: 8,
        mallocs_per_tasklet: 16,
        size_law: SizeLaw::Zipf {
            min: 16,
            max: 2048,
            exponent: 1.1,
        },
        shape: TemporalShape::Bursty {
            burst: 8,
            gap: 10_000,
        },
        heap_size: 1 << 20,
        seed: GRAPH_FRAGMENT_SEED,
        ..SynthConfig::default()
    });
    RequestClass::new("graph", trace, 16 << 10, 1.0)
}

/// LLM-decode-shaped request: fixed 512 B KV-cache blocks at a steady
/// token cadence, shipping activations as payload.
pub fn llm_request() -> RequestClass {
    let trace = synthesize(&SynthConfig {
        n_tasklets: 8,
        mallocs_per_tasklet: 16,
        size_law: SizeLaw::Fixed(512),
        shape: TemporalShape::Steady { compute: 400 },
        heap_size: 2 << 20,
        seed: LLM_FRAGMENT_SEED,
        ..SynthConfig::default()
    });
    RequestClass::new("llm", trace, 8 << 10, 1.0)
}

/// The three-family evaluation mix, equally weighted.
pub fn standard_mix() -> Vec<RequestClass> {
    vec![micro_request(), graph_request(), llm_request()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_malloc::PimAllocator;
    use pim_sim::DpuSim;

    fn sw_build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        AllocatorKind::Sw.build(dpu, tasklets, heap)
    }

    #[test]
    fn classes_are_stable_and_calibratable() {
        for class in standard_mix() {
            assert_eq!(
                class.trace,
                standard_mix()
                    .into_iter()
                    .find(|c| c.name == class.name)
                    .unwrap()
                    .trace,
                "{} fragment must be fixed-seed stable",
                class.name
            );
            let ns = class.service_ns(&sw_build);
            assert!(ns > 0, "{}", class.name);
            assert!(class.payload_bytes > 0);
        }
    }

    #[test]
    fn families_differ_in_shape() {
        let names: Vec<String> = standard_mix().into_iter().map(|c| c.name).collect();
        assert_eq!(names, ["micro", "graph", "llm"]);
        // The graph fragment's zipf/bursty shape is a different trace
        // from the fixed/steady micro fragment.
        assert_ne!(micro_request().trace, graph_request().trace);
        assert_ne!(graph_request().trace, llm_request().trace);
    }
}
