//! The standalone allocation microbenchmark (§V, "Microbenchmark").
//!
//! N tasklets each issue a series of `pim_malloc` calls of a fixed
//! size (optionally paired with frees), and the driver reports average
//! latency, the full latency timeline, the Figure 8(b)-style cycle
//! breakdown, metadata traffic, and buddy-cache statistics. This is
//! the workload behind Figures 7, 8, 15 and 16.

use pim_malloc::{MetaStats, MetadataStore, PimAllocator, StrawManAllocator, StrawManConfig};
use pim_sim::{
    BuddyCacheConfig, BuddyCacheStats, Cycles, DpuConfig, DpuSim, LatencyRecorder, TaskletStats,
};
use serde::{Deserialize, Serialize};

use crate::driver::{drive, Request};
use crate::AllocatorKind;

/// Request pattern of the microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Only allocations, slots never freed (Figures 8, 15, 16).
    AllocOnly,
    /// Each allocation is immediately freed — the "consecutive memory
    /// (de)allocation" pattern of Figure 7.
    AllocFreePairs,
}

/// Microbenchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Number of tasklets issuing requests (paper: 1 or 16).
    pub n_tasklets: usize,
    /// `pim_malloc` calls per tasklet (paper: 128).
    pub allocs_per_tasklet: usize,
    /// Request size in bytes.
    pub alloc_size: u32,
    /// Heap capacity per DPU.
    pub heap_size: u32,
    /// Request pattern.
    pub pattern: Pattern,
}

impl Default for MicroConfig {
    /// The Figure 15 setup: 128 allocations per tasklet on a 32 MB heap.
    fn default() -> Self {
        MicroConfig {
            n_tasklets: 1,
            allocs_per_tasklet: 128,
            alloc_size: 32,
            heap_size: 32 << 20,
            pattern: Pattern::AllocOnly,
        }
    }
}

/// Results of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Allocator evaluated.
    pub kind: AllocatorKind,
    /// Mean `pim_malloc` latency in microseconds.
    pub avg_latency_us: f64,
    /// Every `pim_malloc` latency in completion order.
    pub latencies: LatencyRecorder,
    /// `(completion time µs, latency µs)` series (Figure 8(a)).
    pub timeline_us: Vec<(f64, f64)>,
    /// Aggregate cycle breakdown across tasklets (Figure 8(b)).
    pub breakdown: TaskletStats,
    /// Metadata-store traffic of the allocator's backend.
    pub meta: MetaStats,
    /// Buddy-cache statistics (HW/SW only).
    pub buddy_cache: Option<BuddyCacheStats>,
    /// Virtual finish time in microseconds.
    pub finish_us: f64,
}

fn streams(cfg: &MicroConfig) -> Vec<Vec<Request>> {
    (0..cfg.n_tasklets)
        .map(|_| {
            let mut s = Vec::new();
            for i in 0..cfg.allocs_per_tasklet {
                match cfg.pattern {
                    Pattern::AllocOnly => s.push(Request::Malloc {
                        size: cfg.alloc_size,
                        slot: i,
                    }),
                    Pattern::AllocFreePairs => {
                        s.push(Request::Malloc {
                            size: cfg.alloc_size,
                            slot: 0,
                        });
                        s.push(Request::Free { slot: 0 });
                    }
                }
            }
            s
        })
        .collect()
}

fn finish_result(
    kind: AllocatorKind,
    dpu: &DpuSim,
    meta: MetaStats,
    buddy_cache: Option<BuddyCacheStats>,
    r: crate::driver::DriveResult,
) -> MicroResult {
    let mhz = dpu.config().cost.clock_mhz;
    MicroResult {
        kind,
        avg_latency_us: r.malloc_latencies.mean().as_micros(mhz),
        timeline_us: r
            .timeline
            .iter()
            .map(|&(t, l)| (t.as_micros(mhz), l.as_micros(mhz)))
            .collect(),
        latencies: r.malloc_latencies,
        breakdown: dpu.total_stats(),
        meta,
        buddy_cache,
        finish_us: r.finish.as_micros(mhz),
    }
}

/// Runs the microbenchmark on the given allocator design.
pub fn run_micro(kind: AllocatorKind, cfg: &MicroConfig) -> MicroResult {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(cfg.n_tasklets));
    let mut alloc = kind.build(&mut dpu, cfg.n_tasklets, cfg.heap_size);
    let r = drive(&mut dpu, alloc.as_mut(), &streams(cfg));
    let (meta, bc) = allocator_meta(alloc.as_ref());
    finish_result(kind, &dpu, meta, bc, r)
}

/// [`run_micro`], additionally capturing the run as an
/// [`pim_trace::AllocTrace`]. Replaying the trace against a fresh
/// allocator of the same kind reproduces the run's latency timeline
/// byte for byte (the driver executes through the replay engine).
pub fn run_micro_recorded(
    kind: AllocatorKind,
    cfg: &MicroConfig,
) -> (MicroResult, pim_trace::AllocTrace) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(cfg.n_tasklets));
    let mut alloc = kind.build(&mut dpu, cfg.n_tasklets, cfg.heap_size);
    let name = format!(
        "micro/{}",
        match cfg.pattern {
            Pattern::AllocOnly => "alloc-only",
            Pattern::AllocFreePairs => "alloc-free-pairs",
        }
    );
    let (r, trace) =
        crate::driver::drive_recorded(&mut dpu, alloc.as_mut(), &streams(cfg), name, cfg.heap_size);
    let (meta, bc) = allocator_meta(alloc.as_ref());
    (finish_result(kind, &dpu, meta, bc, r), trace)
}

/// Runs the microbenchmark on PIM-malloc-HW/SW with a specific buddy
/// cache size (Figure 16's sensitivity sweep).
pub fn run_micro_with_cache(cfg: &MicroConfig, cache: BuddyCacheConfig) -> MicroResult {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(cfg.n_tasklets));
    let mut alloc = AllocatorKind::hw_sw_with_cache(&mut dpu, cfg.n_tasklets, cfg.heap_size, cache);
    let r = drive(&mut dpu, alloc.as_mut(), &streams(cfg));
    let (meta, bc) = allocator_meta(alloc.as_ref());
    finish_result(AllocatorKind::HwSw, &dpu, meta, bc, r)
}

/// Extracts metadata/buddy-cache statistics from a boxed allocator.
fn allocator_meta(alloc: &dyn PimAllocator) -> (MetaStats, Option<BuddyCacheStats>) {
    // Downcast-free: both concrete types expose the same stats through
    // inherent methods; we thread them via a helper trait object probe.
    // The `PimAllocator` trait deliberately stays minimal (it mirrors
    // the paper's C API), so stats are recovered via `Any`-style
    // probing on the two known implementations.
    use std::any::Any;
    let any: &dyn Any = alloc.as_any();
    if let Some(pm) = any.downcast_ref::<pim_malloc::PimMalloc>() {
        (pm.metadata_stats(), pm.buddy_cache_stats())
    } else if let Some(sm) = any.downcast_ref::<StrawManAllocator>() {
        (sm.buddy().store().stats(), None)
    } else {
        (MetaStats::default(), None)
    }
}

/// Runs the Figure 7 grid point: a *single-tasklet* straw-man
/// allocator over `heap_size` doing alloc/free pairs of `alloc_size`,
/// returning the average `pim_malloc` latency in microseconds.
///
/// Heaps of 64 KB or less keep their metadata in WRAM (UPMEM's stock
/// scratchpad allocator); larger heaps use the MRAM + coarse-buffer
/// configuration, reproducing the latency cliff of Figure 7.
pub fn run_straw_man_grid_point(heap_size: u32, alloc_size: u32, pairs: usize) -> f64 {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let cfg = StrawManConfig {
        heap_base: 0,
        heap_size,
        min_block: 32,
        metadata_in_wram: heap_size <= 64 << 10,
        ..StrawManConfig::default()
    };
    let mut alloc = StrawManAllocator::init(&mut dpu, cfg).expect("straw-man init");
    let mut stream = Vec::with_capacity(pairs * 2);
    for _ in 0..pairs {
        stream.push(Request::Malloc {
            size: alloc_size,
            slot: 0,
        });
        stream.push(Request::Free { slot: 0 });
    }
    let r = drive(&mut dpu, &mut alloc, &[stream]);
    assert_eq!(r.oom_count, 0, "grid point must fit its heap");
    r.malloc_latencies
        .mean()
        .as_micros(dpu.config().cost.clock_mhz)
}

/// Convenience: mean latency over `Cycles` → µs at the default clock.
pub fn cycles_to_us(c: Cycles) -> f64 {
    c.as_micros(pim_sim::CostModel::default().clock_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_single_thread_ordering() {
        // 32 B allocations, 1 thread: straw-man ≫ SW > HW/SW.
        let cfg = MicroConfig::default();
        let straw = run_micro(AllocatorKind::StrawMan, &cfg);
        let sw = run_micro(AllocatorKind::Sw, &cfg);
        let hw = run_micro(AllocatorKind::HwSw, &cfg);
        assert!(
            straw.avg_latency_us > 20.0 * sw.avg_latency_us,
            "straw-man {} vs SW {}",
            straw.avg_latency_us,
            sw.avg_latency_us
        );
        assert!(hw.avg_latency_us <= sw.avg_latency_us);
    }

    #[test]
    fn figure15_4kb_requests_exercise_backend() {
        let cfg = MicroConfig {
            alloc_size: 4096,
            n_tasklets: 16,
            ..MicroConfig::default()
        };
        let sw = run_micro(AllocatorKind::Sw, &cfg);
        let hw = run_micro(AllocatorKind::HwSw, &cfg);
        assert!(
            hw.avg_latency_us < sw.avg_latency_us,
            "buddy cache must accelerate 4 KB allocations: {} vs {}",
            hw.avg_latency_us,
            sw.avg_latency_us
        );
        let bc = hw.buddy_cache.expect("HW/SW exposes cache stats");
        assert!(bc.hit_rate() > 0.5, "hit rate {}", bc.hit_rate());
        // HW/SW transfers far less metadata than the coarse window.
        assert!(hw.meta.total_bytes() < sw.meta.total_bytes() / 4);
    }

    #[test]
    fn contention_dominates_16_thread_straw_man() {
        let cfg = MicroConfig {
            n_tasklets: 16,
            allocs_per_tasklet: 32,
            ..MicroConfig::default()
        };
        let r = run_micro(AllocatorKind::StrawMan, &cfg);
        let (_, busy, _, _) = r.breakdown.fractions();
        assert!(busy > 0.5, "busy-wait fraction {busy}");
    }

    #[test]
    fn sw_16_threads_stays_mostly_lock_free() {
        let cfg = MicroConfig {
            n_tasklets: 16,
            allocs_per_tasklet: 32,
            ..MicroConfig::default()
        };
        let r = run_micro(AllocatorKind::Sw, &cfg);
        let (_, busy, _, _) = r.breakdown.fractions();
        assert!(busy < 0.2, "thread caches avoid the mutex: {busy}");
    }

    #[test]
    fn figure7_latency_grows_with_heap_and_shrinks_with_alloc_size() {
        let small_heap = run_straw_man_grid_point(32 << 10, 2048, 16);
        let worst = run_straw_man_grid_point(32 << 20, 32, 16);
        let ratio = worst / small_heap;
        assert!(
            ratio > 5.0,
            "Figure 7 diagonal must show a large slowdown, got {ratio}"
        );
        // Monotonicity along the heap axis.
        let mid = run_straw_man_grid_point(2 << 20, 32, 16);
        let big = run_straw_man_grid_point(32 << 20, 32, 16);
        assert!(mid < big);
    }

    #[test]
    fn fine_lru_ablation_is_slower_than_coarse() {
        // §IV-B: fine-grained software LRU regresses on the 16-thread
        // 4 KB microbenchmark despite moving fewer bytes.
        let cfg = MicroConfig {
            n_tasklets: 16,
            alloc_size: 4096,
            allocs_per_tasklet: 64,
            ..MicroConfig::default()
        };
        let coarse = run_micro(AllocatorKind::Sw, &cfg);
        let fine = run_micro(AllocatorKind::SwFineLru, &cfg);
        assert!(
            fine.avg_latency_us > coarse.avg_latency_us,
            "fine {} must be slower than coarse {}",
            fine.avg_latency_us,
            coarse.avg_latency_us
        );
        assert!(fine.meta.total_bytes() < coarse.meta.total_bytes());
    }

    #[test]
    fn cache_size_sweep_saturates() {
        // Figure 16: hit rate and speedup saturate around 64 B.
        let cfg = MicroConfig {
            n_tasklets: 16,
            alloc_size: 4096,
            allocs_per_tasklet: 64,
            ..MicroConfig::default()
        };
        let mut hit_rates = Vec::new();
        for bytes in [16u32, 64, 256] {
            let r = run_micro_with_cache(&cfg, BuddyCacheConfig::with_capacity_bytes(bytes));
            hit_rates.push(r.buddy_cache.unwrap().hit_rate());
        }
        assert!(hit_rates[0] < hit_rates[1] + 0.05);
        assert!(
            (hit_rates[2] - hit_rates[1]).abs() < 0.1,
            "64 B → 256 B must be near-flat: {hit_rates:?}"
        );
    }

    #[test]
    fn recorded_micro_replays_identically() {
        let cfg = MicroConfig {
            n_tasklets: 4,
            allocs_per_tasklet: 32,
            ..MicroConfig::default()
        };
        let (direct, trace) = run_micro_recorded(AllocatorKind::Sw, &cfg);
        assert_eq!(trace.malloc_count(), 4 * 32);
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
        let mut alloc = AllocatorKind::Sw.build(&mut dpu, 4, cfg.heap_size);
        let replayed = pim_trace::replay(&mut dpu, alloc.as_mut(), &trace);
        let mhz = dpu.config().cost.clock_mhz;
        let replay_timeline: Vec<(f64, f64)> = replayed
            .timeline
            .iter()
            .map(|&(t, l)| (t.as_micros(mhz), l.as_micros(mhz)))
            .collect();
        assert_eq!(direct.timeline_us, replay_timeline);
    }

    #[test]
    fn alloc_free_pairs_never_oom() {
        let cfg = MicroConfig {
            pattern: Pattern::AllocFreePairs,
            allocs_per_tasklet: 256,
            heap_size: 1 << 20,
            ..MicroConfig::default()
        };
        let r = run_micro(AllocatorKind::Sw, &cfg);
        assert_eq!(r.latencies.len(), 256);
    }
}
