//! The PIM attention kernel — the paper's extension of the PrIM GEMV
//! benchmark (§V) with dynamically allocated KV storage.
//!
//! Each DPU holds a shard of every active request's KV cache as a
//! chain of allocator-provided 512 B blocks. A decode step streams
//! each request's K blocks through WRAM to compute attention scores
//! (a GEMV against the query shard), streams the V blocks for the
//! weighted sum, appends the new token's KV — allocating a fresh block
//! through `pim_malloc` whenever the tail block is full — and writes
//! the output shard. Requests are partitioned across tasklets.
//!
//! The kernel stores real bytes for appended tokens, so tests can read
//! a request's KV trail back out of the MRAM image.

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{Cycles, DpuSim, Mram, TaskletCtx};

use super::config::LlmConfig;

/// Instructions per 2-byte element of the score/weighted-sum GEMV
/// (multiply-accumulate plus loop overhead on an in-order core).
const MAC_INSTRS_PER_ELEM: u64 = 2;
/// Fixed per-request instructions per step (softmax shard, pointers).
const REQUEST_OVERHEAD_INSTRS: u64 = 120;

/// One request's KV shard: a chain of fixed-size blocks.
#[derive(Debug, Clone)]
struct KvShard {
    blocks: Vec<u32>,
    /// Bytes of the final block already filled.
    tail_used: u32,
    tokens: u32,
}

/// The per-DPU attention kernel state for a batch of requests.
#[derive(Debug)]
pub struct AttentionKernel {
    cfg: LlmConfig,
    shards: Vec<KvShard>,
}

impl AttentionKernel {
    /// Creates a kernel with an empty batch.
    pub fn new(cfg: LlmConfig) -> Self {
        AttentionKernel {
            cfg,
            shards: Vec::new(),
        }
    }

    /// Number of active requests.
    pub fn batch_size(&self) -> usize {
        self.shards.len()
    }

    /// Tokens held by request `idx`.
    pub fn tokens(&self, idx: usize) -> u32 {
        self.shards[idx].tokens
    }

    /// Total 512 B blocks held across the batch.
    pub fn total_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.blocks.len()).sum()
    }

    /// Admits a request and writes its prompt's KV shard (allocating
    /// blocks and storing recognizable bytes for verification).
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] when the heap cannot hold the prompt.
    pub fn admit(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        alloc: &mut dyn PimAllocator,
        prompt_tokens: u32,
    ) -> Result<usize, AllocError> {
        let mut shard = KvShard {
            blocks: Vec::new(),
            tail_used: 0,
            tokens: 0,
        };
        let idx = self.shards.len();
        for t in 0..prompt_tokens {
            Self::append_token(&self.cfg, &mut shard, ctx, alloc, idx as u32, t)?;
        }
        self.shards.push(shard);
        Ok(idx)
    }

    /// Appends one token's per-DPU KV bytes to `shard`.
    fn append_token(
        cfg: &LlmConfig,
        shard: &mut KvShard,
        ctx: &mut TaskletCtx<'_>,
        alloc: &mut dyn PimAllocator,
        request: u32,
        token: u32,
    ) -> Result<(), AllocError> {
        let per_token = cfg.kv_bytes_per_token_per_dpu() as u32;
        let block = cfg.kv_block_bytes;
        let mut remaining = per_token;
        while remaining > 0 {
            if shard.blocks.is_empty() || shard.tail_used == block {
                let addr = alloc.pim_malloc(ctx, block)?;
                shard.blocks.push(addr);
                shard.tail_used = 0;
            }
            let chunk = remaining.min(block - shard.tail_used);
            let tail = *shard.blocks.last().expect("just ensured");
            // Store a recognizable stamp at the token's start so tests
            // can walk the chain back; the rest is latency-only.
            let stamp = (u64::from(request) << 32) | u64::from(token);
            ctx.mram_write_bytes(tail + shard.tail_used, &stamp.to_le_bytes());
            if chunk > 8 {
                ctx.mram_write(tail + shard.tail_used + 8, chunk - 8);
            }
            shard.tail_used += chunk;
            remaining -= chunk;
        }
        shard.tokens = token + 1;
        Ok(())
    }

    /// Runs one decode step for the whole batch: per request, stream K
    /// (scores), stream V (weighted sum), append the new token's KV.
    ///
    /// Requests are distributed round-robin over the DPU's tasklets;
    /// the returned duration is the step's wall time on this DPU.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] if KV growth exhausts the heap.
    pub fn decode_step(
        &mut self,
        dpu: &mut DpuSim,
        alloc: &mut dyn PimAllocator,
    ) -> Result<Cycles, AllocError> {
        let start = dpu.max_clock();
        let n_tasklets = dpu.config().n_tasklets;
        let block = self.cfg.kv_block_bytes;
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let tid = idx % n_tasklets;
            let mut ctx = dpu.ctx(tid);
            ctx.instrs(REQUEST_OVERHEAD_INSTRS);
            // Score pass (K) and weighted-sum pass (V): stream every
            // block through WRAM and MAC over its elements. K and V
            // interleave within the same shard blocks (half each).
            for pass in 0..2 {
                let _ = pass;
                for (bi, &addr) in shard.blocks.iter().enumerate() {
                    let bytes = if bi + 1 == shard.blocks.len() {
                        shard.tail_used
                    } else {
                        block
                    };
                    if bytes == 0 {
                        continue;
                    }
                    ctx.mram_read(addr, bytes);
                    ctx.instrs(u64::from(bytes / 2) * MAC_INSTRS_PER_ELEM / 2);
                }
            }
            // Output shard write-back.
            ctx.mram_write(0, 64);
            // Append the new token's KV (may allocate).
            let token = shard.tokens;
            Self::append_token(&self.cfg, shard, &mut ctx, alloc, idx as u32, token)?;
        }
        Ok(dpu.max_clock() - start)
    }

    /// Walks request `idx`'s block chain in the MRAM image and returns
    /// the token stamps found at each token boundary.
    pub fn read_back_tokens(&self, mram: &Mram, idx: usize) -> Vec<(u32, u32)> {
        let shard = &self.shards[idx];
        let per_token = self.cfg.kv_bytes_per_token_per_dpu() as u32;
        let block = self.cfg.kv_block_bytes;
        let mut out = Vec::new();
        for t in 0..shard.tokens {
            let byte_off = t * per_token;
            let (bi, off) = ((byte_off / block) as usize, byte_off % block);
            let stamp = mram.read_u64(shard.blocks[bi] + off);
            out.push(((stamp >> 32) as u32, stamp as u32));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_sim::DpuConfig;

    fn small_cfg() -> LlmConfig {
        LlmConfig {
            heap_bytes: 8 << 20,
            ..LlmConfig::default()
        }
    }

    fn setup(kind: AllocatorKind) -> (DpuSim, Box<dyn PimAllocator>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let alloc = kind.build(&mut dpu, 16, 8 << 20);
        (dpu, alloc)
    }

    #[test]
    fn admit_allocates_the_expected_block_count() {
        let cfg = small_cfg();
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw);
        let mut k = AttentionKernel::new(cfg);
        let mut ctx = dpu.ctx(0);
        // 1 KB of KV per token / 512 B blocks = 2 blocks per token.
        k.admit(&mut ctx, alloc.as_mut(), 10).unwrap();
        assert_eq!(k.total_blocks(), 20);
        assert_eq!(k.tokens(0), 10);
    }

    #[test]
    fn decode_steps_grow_kv_and_preserve_stamps() {
        let cfg = small_cfg();
        let (mut dpu, mut alloc) = setup(AllocatorKind::HwSw);
        let mut k = AttentionKernel::new(cfg);
        for r in 0..4 {
            let mut ctx = dpu.ctx(r % 16);
            k.admit(&mut ctx, alloc.as_mut(), 8).unwrap();
        }
        for _ in 0..5 {
            k.decode_step(&mut dpu, alloc.as_mut()).unwrap();
        }
        for r in 0..4usize {
            assert_eq!(k.tokens(r), 13);
            let stamps = k.read_back_tokens(dpu.mram(), r);
            assert_eq!(stamps.len(), 13);
            for (t, &(req, tok)) in stamps.iter().enumerate() {
                assert_eq!(req, r as u32, "request stamp");
                assert_eq!(tok, t as u32, "token stamp in order");
            }
        }
    }

    #[test]
    fn step_time_scales_with_context_length() {
        let cfg = small_cfg();
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw);
        let mut k = AttentionKernel::new(cfg);
        {
            let mut ctx = dpu.ctx(0);
            k.admit(&mut ctx, alloc.as_mut(), 16).unwrap();
        }
        let early = k.decode_step(&mut dpu, alloc.as_mut()).unwrap();
        // Grow the context substantially, then measure again.
        for _ in 0..60 {
            k.decode_step(&mut dpu, alloc.as_mut()).unwrap();
        }
        let late = k.decode_step(&mut dpu, alloc.as_mut()).unwrap();
        assert!(
            late.0 > early.0 * 3,
            "attention is O(context): {early} -> {late}"
        );
    }

    #[test]
    fn straw_man_allocation_inflates_step_time() {
        let cfg = small_cfg();
        let step_time = |kind: AllocatorKind| {
            let (mut dpu, mut alloc) = setup(kind);
            let mut k = AttentionKernel::new(cfg);
            for r in 0..8 {
                let mut ctx = dpu.ctx(r % 16);
                k.admit(&mut ctx, alloc.as_mut(), 4).unwrap();
            }
            let mut total = Cycles::ZERO;
            for _ in 0..4 {
                total += k.decode_step(&mut dpu, alloc.as_mut()).unwrap();
            }
            total
        };
        let straw = step_time(AllocatorKind::StrawMan);
        let sw = step_time(AllocatorKind::Sw);
        let hw = step_time(AllocatorKind::HwSw);
        assert!(
            straw.0 > sw.0 * 2,
            "straw-man decode must pay for allocation: {straw} vs {sw}"
        );
        assert!(hw <= sw);
    }

    #[test]
    fn heap_exhaustion_surfaces_as_oom() {
        let cfg = LlmConfig {
            heap_bytes: 1 << 20,
            ..LlmConfig::default()
        };
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut alloc = AllocatorKind::Sw.build(&mut dpu, 16, 1 << 20);
        let mut k = AttentionKernel::new(cfg);
        let mut ctx = dpu.ctx(0);
        // 1 MB heap holds ~1000 tokens of KV; a 2000-token prompt must
        // fail with OOM, not panic.
        let err = k.admit(&mut ctx, alloc.as_mut(), 2000);
        assert!(matches!(err, Err(AllocError::OutOfMemory { .. })));
    }
}
