//! KV-cache memory management: static reservation vs dynamic
//! allocation (Figure 4(b) and Table III of the paper).
//!
//! Under *static* allocation (PAISE-style) every admitted request
//! reserves worst-case KV space (`max_seq_len` tokens) up front; under
//! *dynamic* allocation (`pim_malloc`) each request grows its cache
//! one 512 B block at a time as tokens are generated. The maximum
//! batch experiment admits requests from a trace until the per-DPU
//! heap is exhausted.

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{DpuConfig, DpuSim};
use serde::{Deserialize, Serialize};

use super::config::LlmConfig;
use super::trace::RequestSpec;
use crate::AllocatorKind;

/// KV-cache management scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvScheme {
    /// Static worst-case reservation per request.
    Static,
    /// Dynamic per-block allocation through the given allocator.
    Dynamic(AllocatorKind),
}

impl KvScheme {
    /// Label used in result tables.
    pub fn label(self) -> String {
        match self {
            KvScheme::Static => "Static".to_owned(),
            KvScheme::Dynamic(kind) => kind.label().to_owned(),
        }
    }
}

/// Result of the maximum-batch-size experiment (Figure 4(b)).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MaxBatchResult {
    /// The scheme evaluated.
    pub scheme: KvScheme,
    /// Largest number of concurrent requests whose KV fits one DPU.
    pub max_batch: usize,
}

/// Finds the maximum batch: admits requests from `trace` (their full
/// eventual KV footprint) until the per-DPU heap cannot take another.
///
/// Static admission is pure arithmetic (`heap / worst-case bytes`);
/// dynamic admission drives the real allocator so internal
/// fragmentation and metadata overheads are captured.
pub fn max_batch_size(scheme: KvScheme, cfg: &LlmConfig, trace: &[RequestSpec]) -> MaxBatchResult {
    let max_batch = match scheme {
        KvScheme::Static => (u64::from(cfg.heap_bytes) / cfg.static_bytes_per_request()) as usize,
        KvScheme::Dynamic(kind) => {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
            let mut alloc = kind.build(&mut dpu, 16, cfg.heap_bytes.next_power_of_two());
            let mut admitted = 0usize;
            'admit: for (i, req) in trace.iter().enumerate() {
                let blocks = cfg.blocks_per_request(req.total_tokens());
                for _ in 0..blocks {
                    let mut ctx = dpu.ctx(i % 16);
                    match alloc.pim_malloc(&mut ctx, cfg.kv_block_bytes) {
                        Ok(_) => {}
                        Err(AllocError::OutOfMemory { .. }) => break 'admit,
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    }
                }
                admitted += 1;
            }
            admitted
        }
    };
    MaxBatchResult { scheme, max_batch }
}

/// Records the dynamic KV-cache allocation pattern of serving `reqs`
/// as an [`pim_trace::AllocTrace`].
///
/// Token-major decode: every step grows each active request's cache by
/// the fresh 512 B blocks that token needs, on the tasklet owning the
/// request (`i % 16`). When a request completes, tasklet 0 — the
/// serving scheduler's eviction path — frees its blocks, so the trace
/// carries cross-tasklet `RemoteFree` edges, the producer–consumer
/// shape a replayer must honour.
pub fn record_kv_trace(
    kind: AllocatorKind,
    cfg: &LlmConfig,
    reqs: &[RequestSpec],
) -> pim_trace::AllocTrace {
    let n_tasklets = 16;
    let heap = cfg.heap_bytes.next_power_of_two();
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let inner = kind.build(&mut dpu, n_tasklets, heap);
    let mut rec = pim_trace::TraceRecorder::new(inner, "llm/kv-serving", heap, n_tasklets);
    let max_tokens = reqs
        .iter()
        .map(RequestSpec::total_tokens)
        .max()
        .unwrap_or(0);
    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); reqs.len()];
    // Inclusive upper bound: requests complete at `t == total`, so the
    // longest request's reclaim step is `t == max_tokens`.
    for t in 0..=max_tokens {
        for (i, req) in reqs.iter().enumerate() {
            let total = req.total_tokens();
            if t < total {
                let delta = cfg.blocks_per_request(t + 1) - cfg.blocks_per_request(t);
                for _ in 0..delta {
                    let mut ctx = dpu.ctx(i % n_tasklets);
                    match rec.pim_malloc(&mut ctx, cfg.kv_block_bytes) {
                        Ok(addr) => blocks[i].push(addr),
                        Err(AllocError::OutOfMemory { .. }) => {}
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    }
                }
            } else if t == total {
                // Completion: the scheduler tasklet reclaims the cache.
                for addr in blocks[i].drain(..) {
                    let mut ctx = dpu.ctx(0);
                    rec.pim_free(&mut ctx, addr).expect("live KV block frees");
                }
            }
        }
    }
    rec.into_trace().0
}

/// Runs the KV-allocation pattern on PIM-malloc and reports the
/// fragmentation ratio A/U (Table III's "LLM attention" row).
///
/// `tokens` tokens are appended across `requests` concurrent requests
/// (each allocating 512 B blocks as it grows).
pub fn kv_fragmentation(lazy: bool, cfg: &LlmConfig, requests: usize, tokens: u32) -> f64 {
    let kind = if lazy {
        AllocatorKind::SwLazy
    } else {
        AllocatorKind::Sw
    };
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
    let mut alloc = kind.build(&mut dpu, 16, cfg.heap_bytes.next_power_of_two());
    // Token-major interleaving: every decode step grows each request's
    // cache by however many fresh blocks that token needs.
    for t in 0..tokens {
        for r in 0..requests {
            let delta = cfg.blocks_per_request(t + 1) - cfg.blocks_per_request(t);
            for _ in 0..delta {
                let mut ctx = dpu.ctx(r % 16);
                alloc
                    .pim_malloc(&mut ctx, cfg.kv_block_bytes)
                    .expect("heap sized for the experiment");
            }
        }
    }
    let pm = alloc
        .as_any()
        .downcast_ref::<pim_malloc::PimMalloc>()
        .expect("PIM-malloc variant");
    pm.frag().ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::trace::sharegpt_like_trace;

    #[test]
    fn dynamic_admits_far_more_than_static() {
        // Figure 4(b): dynamic allocation roughly doubles the batch.
        let cfg = LlmConfig::default();
        let trace = sharegpt_like_trace(400, 10.0, cfg.max_seq_len, 11);
        let st = max_batch_size(KvScheme::Static, &cfg, &trace);
        let dy = max_batch_size(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
        assert!(
            dy.max_batch as f64 >= 1.5 * st.max_batch as f64,
            "dynamic {} vs static {}",
            dy.max_batch,
            st.max_batch
        );
        // Magnitudes in the paper's 0–200 range.
        assert!(
            (40..=120).contains(&st.max_batch),
            "static {}",
            st.max_batch
        );
        assert!(
            (80..=250).contains(&dy.max_batch),
            "dynamic {}",
            dy.max_batch
        );
    }

    #[test]
    fn scheme_choice_does_not_change_feasible_tokens() {
        // The allocator kind only changes latency, not capacity.
        let cfg = LlmConfig::default();
        let trace = sharegpt_like_trace(400, 10.0, cfg.max_seq_len, 11);
        let sw = max_batch_size(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
        let hw = max_batch_size(KvScheme::Dynamic(AllocatorKind::HwSw), &cfg, &trace);
        assert_eq!(sw.max_batch, hw.max_batch);
    }

    #[test]
    fn lazy_eliminates_prepopulation_waste() {
        // Table III: LLM attention — eager 1.66 vs lazy 1.0.
        let cfg = LlmConfig::default();
        let eager = kv_fragmentation(false, &cfg, 8, 24);
        let lazy = kv_fragmentation(true, &cfg, 8, 24);
        assert!(eager > lazy, "eager {eager} must exceed lazy {lazy}");
        assert!(
            (lazy - 1.0).abs() < 0.05,
            "512 B blocks fill 4 KB blocks exactly: lazy ratio {lazy}"
        );
        assert!(eager > 1.2, "pre-population waste expected: {eager}");
    }

    #[test]
    fn kv_trace_records_growth_and_remote_reclaim() {
        let cfg = LlmConfig::default();
        let reqs = sharegpt_like_trace(12, 10.0, 256, 5);
        let trace = record_kv_trace(AllocatorKind::Sw, &cfg, &reqs);
        trace.validate().unwrap();
        let expected_blocks: u64 = reqs
            .iter()
            .map(|r| cfg.blocks_per_request(r.total_tokens()))
            .sum();
        assert_eq!(trace.malloc_count() as u64, expected_blocks);
        // Requests on tasklets != 0 are reclaimed by tasklet 0:
        // cross-tasklet free edges must appear.
        assert!(trace.streams[0]
            .iter()
            .any(|op| matches!(op, pim_trace::TraceOp::RemoteFree { .. })));
        // Every request completes — including the longest one — so
        // every allocated block is eventually reclaimed.
        let frees = trace
            .streams
            .iter()
            .flatten()
            .filter(|op| {
                matches!(
                    op,
                    pim_trace::TraceOp::Free { .. } | pim_trace::TraceOp::RemoteFree { .. }
                )
            })
            .count() as u64;
        assert_eq!(frees, expected_blocks, "all KV blocks must be freed");
        // Deterministic and replayable end to end.
        assert_eq!(trace, record_kv_trace(AllocatorKind::Sw, &cfg, &reqs));
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut alloc = AllocatorKind::Sw.build(&mut dpu, 16, trace.heap_size);
        let r = pim_trace::replay(&mut dpu, alloc.as_mut(), &trace);
        assert_eq!(r.malloc_latencies.len() as u64, expected_blocks);
        assert_eq!(r.dropped_frees, 0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(KvScheme::Static.label(), "Static");
        assert!(KvScheme::Dynamic(AllocatorKind::HwSw)
            .label()
            .contains("HW/SW"));
    }
}
