//! LLM model configuration and KV-cache arithmetic.
//!
//! The paper offloads attention to PIM with the Llama-2-7B
//! configuration: the KV cache of each token is sharded across all
//! DPUs, and each DPU grows its shard by allocating a fresh **512 B
//! block per token** when the current space is exhausted (§V).

use serde::{Deserialize, Serialize};

/// Model and system parameters of the attention-on-PIM case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Transformer layers (Llama-2-7B: 32).
    pub n_layers: u32,
    /// Attention heads (Llama-2-7B: 32).
    pub n_heads: u32,
    /// Hidden dimension (Llama-2-7B: 4096).
    pub hidden_dim: u32,
    /// Bytes per element (fp16: 2).
    pub dtype_bytes: u32,
    /// DPUs the KV cache is sharded across (paper: 512).
    pub n_dpus: usize,
    /// Per-token KV growth on one DPU — the paper's kernel allocates
    /// one block of this size per generated token (512 B).
    pub kv_block_bytes: u32,
    /// Model context limit in tokens; a *static* scheme must reserve
    /// this many tokens of KV per request up front.
    pub max_seq_len: u32,
    /// Per-DPU heap bytes available for KV storage.
    pub heap_bytes: u32,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            n_layers: 32,
            n_heads: 32,
            hidden_dim: 4096,
            dtype_bytes: 2,
            n_dpus: 512,
            kv_block_bytes: 512,
            max_seq_len: 768,
            heap_bytes: 31 << 20, // 32 MB heap minus allocator metadata
        }
    }
}

impl LlmConfig {
    /// Total KV bytes per token across the whole model
    /// (K and V, all layers): `2 × layers × hidden × dtype`.
    pub fn kv_bytes_per_token_total(&self) -> u64 {
        2 * u64::from(self.n_layers) * u64::from(self.hidden_dim) * u64::from(self.dtype_bytes)
    }

    /// KV bytes per token landing on one DPU.
    pub fn kv_bytes_per_token_per_dpu(&self) -> u64 {
        self.kv_bytes_per_token_total() / self.n_dpus as u64
    }

    /// Per-DPU KV bytes a request holding `tokens` tokens occupies
    /// under *dynamic* allocation (rounded up to whole blocks).
    pub fn dynamic_bytes_per_request(&self, tokens: u32) -> u64 {
        let raw = u64::from(tokens) * self.kv_bytes_per_token_per_dpu();
        raw.div_ceil(u64::from(self.kv_block_bytes)) * u64::from(self.kv_block_bytes)
    }

    /// Per-DPU KV bytes a request reserves under *static* allocation:
    /// the worst case, `max_seq_len` tokens.
    pub fn static_bytes_per_request(&self) -> u64 {
        self.dynamic_bytes_per_request(self.max_seq_len)
    }

    /// Number of `kv_block_bytes` blocks a request of `tokens` tokens
    /// needs on one DPU.
    pub fn blocks_per_request(&self, tokens: u32) -> u64 {
        self.dynamic_bytes_per_request(tokens) / u64::from(self.kv_block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_kv_arithmetic() {
        let c = LlmConfig::default();
        // 2 × 32 × 4096 × 2 B = 512 KB of KV per token model-wide.
        assert_eq!(c.kv_bytes_per_token_total(), 512 << 10);
        // Across 512 DPUs: 1 KB per token per DPU... the paper's kernel
        // allocates 512 B blocks, i.e. two blocks per token.
        assert_eq!(c.kv_bytes_per_token_per_dpu(), 1024);
        assert_eq!(c.blocks_per_request(1), 2);
    }

    #[test]
    fn dynamic_rounds_to_blocks() {
        let c = LlmConfig::default();
        // 3 tokens = 3 KB = 6 blocks exactly.
        assert_eq!(c.dynamic_bytes_per_request(3), 3072);
        // A request with 0 tokens occupies nothing.
        assert_eq!(c.dynamic_bytes_per_request(0), 0);
    }

    #[test]
    fn static_reserves_worst_case() {
        let c = LlmConfig::default();
        assert_eq!(
            c.static_bytes_per_request(),
            u64::from(c.max_seq_len) * 1024
        );
        // Static reservation doubles a typical 384-token request.
        assert!(c.static_bytes_per_request() >= 2 * c.dynamic_bytes_per_request(384));
    }
}
