//! The attention-layer / KV-cache case study — case study #2 of the
//! paper (§III-A, §VI-C).
//!
//! * [`config`] — Llama-2-7B KV arithmetic and the per-DPU 512 B block
//!   growth the paper's PIM kernel performs.
//! * [`trace`] — synthetic ShareGPT-shaped request traces and the
//!   fixed 128-in/256-out Figure 18 trace.
//! * [`kv_cache`] — static vs dynamic KV management: the maximum batch
//!   experiment (Figure 4(b)) and KV fragmentation (Table III).
//! * [`serving`] — the discrete-event serving simulator reporting
//!   throughput and TPOT percentiles (Figure 18).
//! * [`attention`] — the PIM attention kernel itself (the paper's
//!   PrIM-GEMV extension), streaming allocator-provided KV blocks.

pub mod attention;
pub mod config;
pub mod kv_cache;
pub mod serving;
pub mod trace;

pub use attention::AttentionKernel;
pub use config::LlmConfig;
pub use kv_cache::{kv_fragmentation, max_batch_size, record_kv_trace, KvScheme, MaxBatchResult};
pub use serving::{run_serving, run_serving_many, ServingConfig, ServingResult};
pub use trace::{fixed_trace, sharegpt_like_trace, RequestSpec};
