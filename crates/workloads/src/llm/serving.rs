//! Discrete-event LLM serving simulator (Figure 18 of the paper).
//!
//! The xPU+PIM serving loop: fully-connected layers run on the host
//! accelerator while attention reads every active request's KV cache
//! on the PIM side. Each decode step appends one token per request,
//! and under dynamic allocation each DPU allocates fresh 512 B blocks
//! on the critical path. Throughput rises with the achievable batch
//! (memory-bound admission) and falls with per-step latency; TPOT *is*
//! the per-step latency a request experiences.
//!
//! Each step also moves data host→PIM: the xPU's FC stack produces the
//! new token's K/V vectors, which must land in every DPU's KV shard
//! before the next attention launch. That traffic is described as a
//! [`TransferPlan`] (one buffer per DPU, `batch ×` the per-token
//! per-DPU KV bytes) and scheduled under the config context's
//! batching policy;
//! the push double-buffers behind the next step's FC compute, so only
//! the part that *exceeds* the FC time stalls the decode loop. With
//! rank-sharded batching the push hides almost entirely at realistic
//! batch sizes; a per-DPU call schedule pays 512 fixed overheads per
//! step and stalls every token.

use pim_sim::{LatencyRecorder, SimContext, TransferDirection, TransferPlan};
use serde::{Deserialize, Serialize};

use super::config::LlmConfig;
use super::kv_cache::KvScheme;
use super::trace::RequestSpec;
use crate::micro::{run_micro, MicroConfig, Pattern};

/// Serving-simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Model / PIM configuration.
    pub llm: LlmConfig,
    /// Host (xPU) time per decode step — the FC layers, roughly
    /// constant in the batch for memory-bound decode. Seconds.
    pub fc_step_secs: f64,
    /// Fixed PIM kernel-launch overhead per decode step, seconds.
    pub launch_secs: f64,
    /// Effective per-DPU MRAM streaming bandwidth for attention reads,
    /// bytes/second (PrIM-measured ≈ 0.6–0.7 GB/s).
    pub mram_bw_bytes_per_s: f64,
    /// Host-side prefill time per admitted request, seconds.
    pub prefill_secs: f64,
    /// Shared execution context: `ctx.transfer`/`ctx.batching` price
    /// and schedule the per-step KV push, and `ctx.exec` places
    /// [`run_serving_many`]'s per-scheme simulations on the host
    /// executor. Scheme indices carry no cross-epoch locality, so the
    /// default is [`SimContext::sweep_default`]
    /// ([`pim_sim::ExecPolicy::Oblivious`]); results are identical
    /// under every policy.
    pub ctx: SimContext,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            llm: LlmConfig::default(),
            fc_step_secs: 0.020,
            launch_secs: 0.0005,
            mram_bw_bytes_per_s: 0.65e9,
            prefill_secs: 0.015,
            ctx: SimContext::sweep_default(),
        }
    }
}

/// Serving-simulation results (one Figure 18 bar group).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingResult {
    /// The KV scheme evaluated.
    pub scheme: KvScheme,
    /// Output tokens generated per second.
    pub throughput_tokens_per_s: f64,
    /// Median time-per-output-token, milliseconds.
    pub tpot_p50_ms: f64,
    /// 95th-percentile TPOT, milliseconds.
    pub tpot_p95_ms: f64,
    /// 99th-percentile TPOT, milliseconds.
    pub tpot_p99_ms: f64,
    /// Largest batch formed during the run.
    pub peak_batch: usize,
    /// Wall-clock time to drain the trace, seconds.
    pub makespan_s: f64,
    /// Total modeled host→PIM KV push time across all steps, seconds
    /// (overlapped or not).
    pub kv_push_secs: f64,
    /// KV push time that could *not* hide behind FC compute and
    /// stalled the decode loop, seconds (included in the makespan).
    pub kv_push_stall_secs: f64,
    /// Host↔PIM transfer calls the KV pushes issued.
    pub kv_push_calls: u64,
}

/// Measures the per-allocation wall-clock cost of a scheme's allocator
/// under concurrent (16-tasklet) 512 B allocation — the per-block cost
/// the decode loop pays. Returns seconds per block (0 for static).
fn alloc_secs_per_block(scheme: KvScheme, cfg: &LlmConfig) -> f64 {
    match scheme {
        KvScheme::Static => 0.0,
        KvScheme::Dynamic(kind) => {
            let micro = MicroConfig {
                n_tasklets: 16,
                allocs_per_tasklet: 64,
                alloc_size: cfg.kv_block_bytes,
                heap_size: 32 << 20,
                pattern: Pattern::AllocOnly,
            };
            let r = run_micro(kind, &micro);
            // Wall time for all blocks, spread across the tasklets.
            r.finish_us * 1e-6 / (16.0 * 64.0)
        }
    }
}

/// Runs the serving simulation for several schemes concurrently, one
/// share-nothing simulation per scheme, returning results in input
/// order.
///
/// Each scheme's run is independent (its own allocator calibration DPU
/// and event loop), so this is a deterministic parallel map over
/// [`run_serving`] — the Figure 18 comparison at the wall-clock cost of
/// its slowest scheme instead of their sum.
pub fn run_serving_many(
    schemes: &[KvScheme],
    cfg: &ServingConfig,
    trace: &[RequestSpec],
) -> Vec<ServingResult> {
    pim_sim::parallel_indexed_with(schemes.len(), cfg.ctx.exec, |i| {
        run_serving(schemes[i], cfg, trace)
    })
}

/// Runs the serving simulation over `trace`.
pub fn run_serving(scheme: KvScheme, cfg: &ServingConfig, trace: &[RequestSpec]) -> ServingResult {
    let alloc_block_secs = alloc_secs_per_block(scheme, &cfg.llm);
    let heap = u64::from(cfg.llm.heap_bytes);
    let per_req_static = cfg.llm.static_bytes_per_request();
    let planner = cfg.ctx.planner();

    #[derive(Debug, Clone, Copy)]
    struct Active {
        generated: u32,
        target: u32,
        context: u32, // prompt + generated
    }

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waiting: Vec<RequestSpec> = Vec::new();
    let mut active: Vec<Active> = Vec::new();
    let mut kv_bytes_used = 0u64;
    let mut tpot = LatencyRecorder::new(); // stored in microseconds
    let mut total_output_tokens = 0u64;
    let mut peak_batch = 0usize;
    let mut kv_push_secs = 0.0f64;
    let mut kv_push_stall_secs = 0.0f64;
    let mut kv_push_calls = 0u64;
    let start = trace.first().map(|r| r.arrival_s).unwrap_or(0.0);

    while active.len() + waiting.len() > 0 || next_arrival < trace.len() {
        // Pull arrivals up to `now`.
        while next_arrival < trace.len() && trace[next_arrival].arrival_s <= now {
            waiting.push(trace[next_arrival]);
            next_arrival += 1;
        }
        // Admit while memory allows.
        let mut admitted = 0usize;
        while let Some(req) = waiting.first().copied() {
            let needed = match scheme {
                KvScheme::Static => per_req_static,
                KvScheme::Dynamic(_) => cfg.llm.dynamic_bytes_per_request(req.prompt_tokens),
            };
            let fits = kv_bytes_used + needed <= heap;
            if !fits {
                break;
            }
            waiting.remove(0);
            kv_bytes_used += needed;
            active.push(Active {
                generated: 0,
                target: req.output_tokens,
                context: req.prompt_tokens,
            });
            admitted += 1;
        }
        if active.is_empty() {
            // Idle until the next arrival.
            match trace.get(next_arrival) {
                Some(r) => now = now.max(r.arrival_s),
                None => break,
            }
            continue;
        }
        peak_batch = peak_batch.max(active.len());

        // One decode step for the whole batch.
        let kv_read_bytes: u64 = active
            .iter()
            .map(|a| u64::from(a.context) * cfg.llm.kv_bytes_per_token_per_dpu())
            .sum();
        let attn_secs = cfg.launch_secs + kv_read_bytes as f64 / cfg.mram_bw_bytes_per_s;
        // Dynamic: each request adds one token; charge fresh blocks.
        let mut alloc_secs = 0.0;
        if let KvScheme::Dynamic(_) = scheme {
            for a in &active {
                let before = cfg.llm.blocks_per_request(a.context);
                let after = cfg.llm.blocks_per_request(a.context + 1);
                alloc_secs += (after - before) as f64 * alloc_block_secs;
                kv_bytes_used += (after - before) * u64::from(cfg.llm.kv_block_bytes);
            }
        }
        // Push each request's freshly generated K/V to every DPU's KV
        // shard; the push overlaps the next step's FC compute, so only
        // the excess over the FC time reaches the critical path.
        let push_plan = TransferPlan::uniform(
            TransferDirection::HostToPim,
            cfg.llm.n_dpus,
            active.len() as u64 * cfg.llm.kv_bytes_per_token_per_dpu(),
        );
        let push = planner.estimate(&push_plan);
        let push_stall = (push.secs - cfg.fc_step_secs).max(0.0);
        kv_push_secs += push.secs;
        kv_push_stall_secs += push_stall;
        kv_push_calls += push.calls;
        let step = cfg.fc_step_secs
            + attn_secs
            + alloc_secs
            + admitted as f64 * cfg.prefill_secs
            + push_stall;
        now += step;

        // Every active request emitted one token with this step's TPOT.
        for _ in 0..active.len() {
            tpot.record(pim_sim::Cycles((step * 1e6) as u64));
        }
        total_output_tokens += active.len() as u64;
        for a in &mut active {
            a.generated += 1;
            a.context += 1;
        }
        // Retire finished requests and release their memory.
        active.retain(|a| {
            if a.generated >= a.target {
                let held = match scheme {
                    KvScheme::Static => per_req_static,
                    KvScheme::Dynamic(_) => cfg.llm.dynamic_bytes_per_request(a.context),
                };
                kv_bytes_used = kv_bytes_used.saturating_sub(held);
                false
            } else {
                true
            }
        });
    }

    let makespan = (now - start).max(1e-9);
    // TPOT percentiles: recorder stores µs.
    let p = |q: f64| tpot.percentile(q).0 as f64 / 1e3;
    ServingResult {
        scheme,
        throughput_tokens_per_s: total_output_tokens as f64 / makespan,
        tpot_p50_ms: p(0.50),
        tpot_p95_ms: p(0.95),
        tpot_p99_ms: p(0.99),
        peak_batch,
        makespan_s: makespan,
        kv_push_secs,
        kv_push_stall_secs,
        kv_push_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::trace::fixed_trace;
    use crate::AllocatorKind;

    fn quick_cfg() -> ServingConfig {
        ServingConfig::default()
    }

    fn schemes() -> [KvScheme; 4] {
        [
            KvScheme::Static,
            KvScheme::Dynamic(AllocatorKind::StrawMan),
            KvScheme::Dynamic(AllocatorKind::Sw),
            KvScheme::Dynamic(AllocatorKind::HwSw),
        ]
    }

    #[test]
    fn dynamic_schemes_outperform_static_throughput() {
        // Figure 18: HW/SW reaches ~1.7× static throughput; every
        // dynamic scheme beats static (bigger batches).
        let cfg = quick_cfg();
        let trace = fixed_trace(100, 10.0);
        let st = run_serving(KvScheme::Static, &cfg, &trace);
        let sw = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
        let hw = run_serving(KvScheme::Dynamic(AllocatorKind::HwSw), &cfg, &trace);
        assert!(
            hw.throughput_tokens_per_s > 1.2 * st.throughput_tokens_per_s,
            "HW/SW {} vs static {}",
            hw.throughput_tokens_per_s,
            st.throughput_tokens_per_s
        );
        assert!(sw.throughput_tokens_per_s > st.throughput_tokens_per_s);
        assert!(hw.throughput_tokens_per_s >= sw.throughput_tokens_per_s);
        assert!(hw.peak_batch > st.peak_batch);
    }

    #[test]
    fn tpot_ordering_matches_figure18() {
        // Static has the lowest TPOT (no allocation overhead);
        // straw-man the highest; HW/SW improves on SW.
        let cfg = quick_cfg();
        let trace = fixed_trace(40, 10.0);
        let results = run_serving_many(&schemes(), &cfg, &trace);
        let (st, straw, sw, hw) = (&results[0], &results[1], &results[2], &results[3]);
        assert!(st.tpot_p50_ms <= sw.tpot_p50_ms);
        assert!(
            straw.tpot_p50_ms > sw.tpot_p50_ms,
            "straw-man TPOT must be worst"
        );
        assert!(hw.tpot_p99_ms <= sw.tpot_p99_ms);
        // TPOT in a plausible LLM-serving range (paper: 16–80 ms).
        assert!(st.tpot_p50_ms > 5.0 && st.tpot_p50_ms < 200.0);
    }

    #[test]
    fn straw_man_throughput_suffers_from_alloc_latency() {
        let cfg = quick_cfg();
        let trace = fixed_trace(40, 10.0);
        let straw = run_serving(KvScheme::Dynamic(AllocatorKind::StrawMan), &cfg, &trace);
        let sw = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
        assert!(
            sw.throughput_tokens_per_s > straw.throughput_tokens_per_s,
            "SW {} must beat straw-man {}",
            sw.throughput_tokens_per_s,
            straw.throughput_tokens_per_s
        );
    }

    #[test]
    fn all_requests_complete_and_memory_is_released() {
        let cfg = quick_cfg();
        let trace = fixed_trace(30, 20.0);
        for s in schemes() {
            let r = run_serving(s, &cfg, &trace);
            // 30 requests × 256 output tokens each.
            let expected = 30.0 * 256.0;
            let produced = r.throughput_tokens_per_s * r.makespan_s;
            assert!(
                (produced - expected).abs() < 1.0,
                "{:?}: produced {produced} of {expected}",
                s
            );
        }
    }

    #[test]
    fn empty_trace_is_handled() {
        let cfg = quick_cfg();
        let r = run_serving(KvScheme::Static, &cfg, &[]);
        assert_eq!(r.peak_batch, 0);
        assert_eq!(r.throughput_tokens_per_s, 0.0);
        assert_eq!(r.kv_push_calls, 0);
    }

    #[test]
    fn sharded_kv_push_mostly_hides_behind_fc_compute() {
        // The rank-sharded push is cheaper than one FC step except at
        // the very largest batches, so almost all of it overlaps; the
        // residual stall is a vanishing fraction of the makespan.
        let cfg = quick_cfg();
        let trace = fixed_trace(100, 10.0);
        let r = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
        assert!(r.kv_push_secs > 0.0);
        assert!(r.kv_push_calls > 0);
        assert!(
            r.kv_push_stall_secs < 0.01 * r.makespan_s,
            "sharded push must (almost) hide: stalled {} of {}",
            r.kv_push_stall_secs,
            r.makespan_s
        );
        assert!(r.kv_push_stall_secs < 0.1 * r.kv_push_secs);
    }

    #[test]
    fn per_dpu_kv_push_stalls_the_decode_loop() {
        // 512 per-DPU calls per step cost 12.8 ms of fixed overhead
        // alone plus rank-serialized data: the push no longer hides
        // behind the 20 ms FC step, TPOT and throughput suffer.
        let sharded = quick_cfg();
        let per_dpu = ServingConfig {
            ctx: sharded.ctx.with_batching(pim_sim::HostBatching::PerDpu),
            ..sharded
        };
        let trace = fixed_trace(100, 10.0);
        let fast = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &sharded, &trace);
        let slow = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &per_dpu, &trace);
        assert!(slow.kv_push_stall_secs > 0.0);
        assert!(slow.kv_push_calls > fast.kv_push_calls);
        assert!(
            slow.throughput_tokens_per_s < fast.throughput_tokens_per_s,
            "per-DPU pushes {} must lose to sharded {}",
            slow.throughput_tokens_per_s,
            fast.throughput_tokens_per_s
        );
        assert!(slow.tpot_p50_ms > fast.tpot_p50_ms);
    }
}
