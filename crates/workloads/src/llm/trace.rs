//! Synthetic request traces standing in for ShareGPT.
//!
//! The ShareGPT dataset cannot be shipped; its relevant property for
//! the KV-cache experiments is the *length distribution*: prompt and
//! output lengths are right-skewed with a long tail. We draw lengths
//! from a clipped log-normal fitted to published ShareGPT statistics
//! (median output ≈ 200 tokens, long tail to the context limit).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens (known only at completion in reality;
    /// the simulator uses it as ground truth).
    pub output_tokens: u32,
    /// Arrival time in seconds.
    pub arrival_s: f64,
}

impl RequestSpec {
    /// Total tokens whose KV this request eventually holds.
    pub fn total_tokens(&self) -> u32 {
        self.prompt_tokens + self.output_tokens
    }
}

/// Draws a clipped log-normal sample.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64, min: u32, max: u32) -> u32 {
    // Box–Muller from two uniforms; StdRng is deterministic per seed.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = (mu + sigma * z).exp();
    (v.round() as u32).clamp(min, max)
}

/// Generates a ShareGPT-shaped trace of `n` requests arriving at
/// `rate_per_s`, with lengths clipped to `max_seq_len`.
///
/// Deterministic for a given `seed`.
pub fn sharegpt_like_trace(
    n: usize,
    rate_per_s: f64,
    max_seq_len: u32,
    seed: u64,
) -> Vec<RequestSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let prompt = lognormal(&mut rng, 4.6, 0.8, 8, max_seq_len / 2);
            let output = lognormal(
                &mut rng,
                5.3,
                0.7,
                4,
                max_seq_len.saturating_sub(prompt).max(4),
            );
            RequestSpec {
                prompt_tokens: prompt,
                output_tokens: output,
                arrival_s: i as f64 / rate_per_s,
            }
        })
        .collect()
}

/// The paper's Figure 18 trace: `n` requests at `rate_per_s`, each
/// with a fixed 128-token prompt and 256-token output (§V).
pub fn fixed_trace(n: usize, rate_per_s: f64) -> Vec<RequestSpec> {
    (0..n)
        .map(|i| RequestSpec {
            prompt_tokens: 128,
            output_tokens: 256,
            arrival_s: i as f64 / rate_per_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_in_range() {
        let a = sharegpt_like_trace(200, 10.0, 768, 3);
        let b = sharegpt_like_trace(200, 10.0, 768, 3);
        assert_eq!(a, b);
        for r in &a {
            assert!(r.prompt_tokens >= 8);
            assert!(r.total_tokens() <= 768 + 4);
            assert!(r.output_tokens >= 4);
        }
    }

    #[test]
    fn lengths_are_skewed() {
        let t = sharegpt_like_trace(2000, 10.0, 768, 7);
        let mut outs: Vec<u32> = t.iter().map(|r| r.output_tokens).collect();
        outs.sort_unstable();
        let median = outs[outs.len() / 2];
        let p95 = outs[outs.len() * 95 / 100];
        assert!(
            p95 > median * 2,
            "long tail expected: median {median}, p95 {p95}"
        );
        // Median output lands near ShareGPT's ~200 tokens.
        assert!((100..=350).contains(&median), "median {median}");
    }

    #[test]
    fn arrivals_match_rate() {
        let t = sharegpt_like_trace(100, 10.0, 768, 1);
        assert!((t[99].arrival_s - 9.9).abs() < 1e-9);
        assert_eq!(t[0].arrival_s, 0.0);
    }

    #[test]
    fn fixed_trace_matches_methodology() {
        let t = fixed_trace(100, 10.0);
        assert_eq!(t.len(), 100);
        assert!(t
            .iter()
            .all(|r| r.prompt_tokens == 128 && r.output_tokens == 256));
    }
}
