//! The multi-tasklet request driver.
//!
//! Workloads describe each tasklet's behaviour as a stream of
//! [`Request`]s; the driver interleaves the streams in **virtual-time
//! order** (always advancing the tasklet with the smallest logical
//! clock), so mutex hand-offs and DMA queueing between tasklets are
//! causally consistent. Per-request allocation latencies are recorded
//! in completion order, which is what the paper's latency-over-time
//! plots (Figures 8(a) and 17(c)) show.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{Cycles, DpuSim, LatencyRecorder};

/// A virtual-time scheduler over per-tasklet logical clocks.
///
/// Replaces the per-request `(0..n).min_by_key(clock)` linear scan with
/// a min-heap keyed on `(clock, tasklet id)`: selection is O(log n)
/// per request instead of O(n). Ties break on the smaller tasklet id,
/// exactly like the scan's first-minimum rule, so request interleavings
/// — and therefore every latency-ordering result — are byte-identical
/// to the scan's.
///
/// Usage: `pop` the next tasklet, execute one of its requests (which
/// advances only that tasklet's clock), then `push` it back while it
/// has requests left.
#[derive(Debug)]
pub struct VirtualTimeQueue {
    heap: BinaryHeap<Reverse<(Cycles, usize)>>,
}

impl VirtualTimeQueue {
    /// Creates a queue holding `tasklets`, each keyed at its current
    /// clock on `dpu`.
    pub fn new(dpu: &DpuSim, tasklets: impl IntoIterator<Item = usize>) -> Self {
        VirtualTimeQueue {
            heap: tasklets
                .into_iter()
                .map(|t| Reverse((dpu.clock(t), t)))
                .collect(),
        }
    }

    /// Removes and returns the queued tasklet with the smallest clock
    /// (smallest id on ties), or `None` when the queue is empty.
    ///
    /// Entries whose clock advanced since they were queued are lazily
    /// re-keyed at their current clock rather than trusted stale.
    pub fn pop(&mut self, dpu: &DpuSim) -> Option<usize> {
        while let Some(Reverse((queued_at, tid))) = self.heap.pop() {
            let now = dpu.clock(tid);
            if now == queued_at {
                return Some(tid);
            }
            self.heap.push(Reverse((now, tid)));
        }
        None
    }

    /// Re-queues `tid` at its current clock (call after executing one
    /// of its requests, while it has more).
    pub fn push(&mut self, dpu: &DpuSim, tid: usize) {
        self.heap.push(Reverse((dpu.clock(tid), tid)));
    }
}

/// One allocator request in a tasklet's stream.
///
/// `slot` names an allocation within the tasklet's private slot table
/// so later requests can free it without knowing addresses up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Allocate `size` bytes and remember the address in `slot`.
    Malloc {
        /// Request size in bytes.
        size: u32,
        /// Slot index to store the returned address in.
        slot: usize,
    },
    /// Free the address remembered in `slot` (no-op if empty).
    Free {
        /// Slot index to free.
        slot: usize,
    },
}

/// Outcome of a driver run.
#[derive(Debug, Clone)]
pub struct DriveResult {
    /// Latency of every `Malloc` request, in completion order.
    pub malloc_latencies: LatencyRecorder,
    /// `(completion time, latency)` of every `Malloc`, in completion
    /// order — the latency-over-time series of Figures 8(a)/17(c).
    pub timeline: Vec<(Cycles, Cycles)>,
    /// Per-tasklet total `pim_malloc` time (Figure 17(b)).
    pub per_tasklet_malloc: Vec<Cycles>,
    /// Number of `Malloc` requests that failed with out-of-memory.
    pub oom_count: u64,
    /// Virtual time when the last tasklet finished.
    pub finish: Cycles,
}

/// Runs per-tasklet request streams against `alloc` on `dpu`.
///
/// Streams are indexed by tasklet id; `streams.len()` must not exceed
/// the DPU's tasklet count. Out-of-memory failures are counted and the
/// stream continues (matching how the paper's microbenchmarks keep
/// requesting); other allocator errors panic, since the driver only
/// frees slots it has filled.
pub fn drive(
    dpu: &mut DpuSim,
    alloc: &mut dyn PimAllocator,
    streams: &[Vec<Request>],
) -> DriveResult {
    assert!(
        streams.len() <= dpu.config().n_tasklets,
        "more streams ({}) than tasklets ({})",
        streams.len(),
        dpu.config().n_tasklets
    );
    let n = streams.len();
    let mut next_op = vec![0usize; n];
    let mut slots: Vec<Vec<Option<u32>>> = streams
        .iter()
        .map(|s| {
            let max_slot = s
                .iter()
                .map(|r| match r {
                    Request::Malloc { slot, .. } | Request::Free { slot } => *slot + 1,
                })
                .max()
                .unwrap_or(0);
            vec![None; max_slot]
        })
        .collect();
    let mut result = DriveResult {
        malloc_latencies: LatencyRecorder::new(),
        timeline: Vec::new(),
        per_tasklet_malloc: vec![Cycles::ZERO; n],
        oom_count: 0,
        finish: Cycles::ZERO,
    };

    // Always advance the unfinished tasklet with the smallest clock.
    let mut queue = VirtualTimeQueue::new(dpu, (0..n).filter(|&t| !streams[t].is_empty()));
    while let Some(tid) = queue.pop(dpu) {
        let req = streams[tid][next_op[tid]];
        next_op[tid] += 1;
        match req {
            Request::Malloc { size, slot } => {
                let mut ctx = dpu.ctx(tid);
                let start = ctx.now();
                match alloc.pim_malloc(&mut ctx, size) {
                    Ok(addr) => {
                        let end = ctx.now();
                        let latency = end - start;
                        result.malloc_latencies.record(latency);
                        result.timeline.push((end, latency));
                        result.per_tasklet_malloc[tid] += latency;
                        if let Some(prev) = slots[tid][slot].replace(addr) {
                            // Slot reuse frees the shadowed allocation
                            // to keep the heap from leaking.
                            let mut ctx = dpu.ctx(tid);
                            alloc.pim_free(&mut ctx, prev).expect("shadowed slot frees");
                        }
                    }
                    Err(AllocError::OutOfMemory { .. }) => result.oom_count += 1,
                    Err(e) => panic!("malloc failed: {e}"),
                }
            }
            Request::Free { slot } => {
                if let Some(addr) = slots[tid][slot].take() {
                    let mut ctx = dpu.ctx(tid);
                    alloc
                        .pim_free(&mut ctx, addr)
                        .expect("driver frees live slots");
                }
            }
        }
        if next_op[tid] < streams[tid].len() {
            queue.push(dpu, tid);
        }
    }
    result.finish = dpu.max_clock();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_sim::DpuConfig;

    fn setup(kind: AllocatorKind, tasklets: usize) -> (DpuSim, Box<dyn PimAllocator>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        let alloc = kind.build(&mut dpu, tasklets, 1 << 20);
        (dpu, alloc)
    }

    #[test]
    fn drives_alloc_free_pairs() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 2);
        let stream = vec![
            Request::Malloc { size: 64, slot: 0 },
            Request::Free { slot: 0 },
            Request::Malloc { size: 128, slot: 0 },
            Request::Free { slot: 0 },
        ];
        let r = drive(&mut dpu, alloc.as_mut(), &[stream.clone(), stream]);
        assert_eq!(r.malloc_latencies.len(), 4);
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.timeline.len(), 4);
        assert!(r.finish > Cycles::ZERO);
        // Timeline is in completion order.
        for w in r.timeline.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn free_of_empty_slot_is_noop() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let r = drive(&mut dpu, alloc.as_mut(), &[vec![Request::Free { slot: 0 }]]);
        assert_eq!(r.malloc_latencies.len(), 0);
    }

    #[test]
    fn slot_reuse_frees_previous_allocation() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let stream: Vec<Request> = (0..100)
            .map(|_| Request::Malloc {
                size: 4096,
                slot: 0,
            })
            .collect();
        let r = drive(&mut dpu, alloc.as_mut(), &[stream]);
        // 100 allocations through one slot never exhaust a 1 MB heap.
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.malloc_latencies.len(), 100);
    }

    #[test]
    fn oom_is_counted_not_fatal() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let stream: Vec<Request> = (0..40)
            .map(|i| Request::Malloc {
                size: 64 << 10,
                slot: i,
            })
            .collect();
        let r = drive(&mut dpu, alloc.as_mut(), &[stream]);
        assert!(r.oom_count > 0, "1 MB heap cannot hold 40 × 64 KB");
        assert!(r.malloc_latencies.len() < 40);
    }

    #[test]
    fn contention_inflates_multi_tasklet_latency() {
        // The same per-tasklet stream takes longer per request under
        // 16-way contention on the straw-man's single mutex.
        let stream: Vec<Request> = (0..16)
            .map(|_| Request::Malloc { size: 32, slot: 0 })
            .collect();
        let (mut dpu1, mut a1) = setup(AllocatorKind::StrawMan, 1);
        let r1 = drive(&mut dpu1, a1.as_mut(), std::slice::from_ref(&stream));
        let (mut dpu16, mut a16) = setup(AllocatorKind::StrawMan, 16);
        let streams: Vec<_> = (0..16).map(|_| stream.clone()).collect();
        let r16 = drive(&mut dpu16, a16.as_mut(), &streams);
        assert!(
            r16.malloc_latencies.mean().0 > 2 * r1.malloc_latencies.mean().0,
            "contended mean {} vs solo mean {}",
            r16.malloc_latencies.mean(),
            r1.malloc_latencies.mean()
        );
    }

    #[test]
    fn queue_selection_is_identical_to_linear_scan() {
        // The heap scheduler must replicate the old
        // `(0..n).min_by_key(clock)` selection exactly, including
        // smallest-id tie-breaking, so latency orderings stay
        // byte-identical.
        let run = |use_queue: bool| -> Vec<usize> {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(6));
            // Uneven head start so clocks collide and diverge.
            dpu.ctx(4).instrs(2);
            let mut remaining = [3usize, 1, 4, 2, 3, 0];
            let mut order = Vec::new();
            if use_queue {
                let mut q = VirtualTimeQueue::new(&dpu, (0..6).filter(|&t| remaining[t] > 0));
                while let Some(tid) = q.pop(&dpu) {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                    if remaining[tid] > 0 {
                        q.push(&dpu, tid);
                    }
                }
            } else {
                while let Some(tid) = (0..6)
                    .filter(|&t| remaining[t] > 0)
                    .min_by_key(|&t| dpu.clock(t))
                {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                }
            }
            order
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "more streams")]
    fn too_many_streams_rejected() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let s = vec![vec![], vec![]];
        drive(&mut dpu, alloc.as_mut(), &s);
    }
}
