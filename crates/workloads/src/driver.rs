//! The multi-tasklet request driver.
//!
//! Workloads describe each tasklet's behaviour as a stream of
//! [`Request`]s; the driver interleaves the streams in **virtual-time
//! order** (always advancing the tasklet with the smallest logical
//! clock), so mutex hand-offs and DMA queueing between tasklets are
//! causally consistent. Per-request allocation latencies are recorded
//! in completion order, which is what the paper's latency-over-time
//! plots (Figures 8(a) and 17(c)) show.
//!
//! Since the trace subsystem landed, the driver is a thin veneer over
//! [`pim_trace`]'s replay engine: request streams convert 1:1 into
//! [`TraceOp`]s and [`drive`] delegates to
//! [`replay_streams`](pim_trace::replay_streams). A driver workload is
//! therefore *exactly* a trace — [`drive_recorded`] hands back the
//! [`AllocTrace`] alongside the results, and replaying it later
//! reproduces the run's latency timeline byte for byte.

use pim_malloc::PimAllocator;
use pim_sim::{Cycles, DpuSim, LatencyRecorder};
use pim_trace::{AllocTrace, TraceOp};

pub use pim_sim::VirtualTimeQueue;

/// One allocator request in a tasklet's stream.
///
/// `slot` names an allocation within the tasklet's private slot table
/// so later requests can free it without knowing addresses up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Allocate `size` bytes and remember the address in `slot`.
    Malloc {
        /// Request size in bytes.
        size: u32,
        /// Slot index to store the returned address in.
        slot: usize,
    },
    /// Free the address remembered in `slot` (no-op if empty).
    Free {
        /// Slot index to free.
        slot: usize,
    },
}

impl Request {
    /// The trace event this request replays as.
    pub fn to_trace_op(self) -> TraceOp {
        match self {
            Request::Malloc { size, slot } => TraceOp::Malloc {
                size,
                slot: slot as u32,
            },
            Request::Free { slot } => TraceOp::Free { slot: slot as u32 },
        }
    }
}

/// Converts per-tasklet request streams into trace event streams.
fn to_op_streams(streams: &[Vec<Request>]) -> Vec<Vec<TraceOp>> {
    streams
        .iter()
        .map(|s| s.iter().map(|r| r.to_trace_op()).collect())
        .collect()
}

/// Outcome of a driver run.
#[derive(Debug, Clone)]
pub struct DriveResult {
    /// Latency of every `Malloc` request, in completion order.
    pub malloc_latencies: LatencyRecorder,
    /// `(completion time, latency)` of every `Malloc`, in completion
    /// order — the latency-over-time series of Figures 8(a)/17(c).
    pub timeline: Vec<(Cycles, Cycles)>,
    /// Per-tasklet total `pim_malloc` time (Figure 17(b)).
    pub per_tasklet_malloc: Vec<Cycles>,
    /// Number of `Malloc` requests that failed with out-of-memory.
    pub oom_count: u64,
    /// Virtual time when the last tasklet finished.
    pub finish: Cycles,
}

/// Runs per-tasklet request streams against `alloc` on `dpu`.
///
/// Streams are indexed by tasklet id; `streams.len()` must not exceed
/// the DPU's tasklet count. Out-of-memory failures are counted and the
/// stream continues (matching how the paper's microbenchmarks keep
/// requesting); other allocator errors panic, since the driver only
/// frees slots it has filled.
pub fn drive(
    dpu: &mut DpuSim,
    alloc: &mut dyn PimAllocator,
    streams: &[Vec<Request>],
) -> DriveResult {
    assert!(
        streams.len() <= dpu.config().n_tasklets,
        "more streams ({}) than tasklets ({})",
        streams.len(),
        dpu.config().n_tasklets
    );
    let r = pim_trace::replay_streams(dpu, alloc, &to_op_streams(streams));
    DriveResult {
        malloc_latencies: r.malloc_latencies,
        timeline: r.timeline,
        per_tasklet_malloc: r.per_tasklet_malloc,
        oom_count: r.oom_count,
        finish: r.finish,
    }
}

/// [`drive`], additionally returning the run as an [`AllocTrace`]
/// named `name` against a `heap_size`-byte heap.
///
/// Because the driver executes *through* the replay engine, replaying
/// the returned trace on a fresh identical allocator reproduces this
/// run's latency results byte for byte.
pub fn drive_recorded(
    dpu: &mut DpuSim,
    alloc: &mut dyn PimAllocator,
    streams: &[Vec<Request>],
    name: impl Into<String>,
    heap_size: u32,
) -> (DriveResult, AllocTrace) {
    let result = drive(dpu, alloc, streams);
    let trace = AllocTrace {
        name: name.into(),
        n_tasklets: streams.len(),
        heap_size,
        streams: to_op_streams(streams),
    };
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use pim_sim::DpuConfig;

    fn setup(kind: AllocatorKind, tasklets: usize) -> (DpuSim, Box<dyn PimAllocator>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        let alloc = kind.build(&mut dpu, tasklets, 1 << 20);
        (dpu, alloc)
    }

    #[test]
    fn drives_alloc_free_pairs() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 2);
        let stream = vec![
            Request::Malloc { size: 64, slot: 0 },
            Request::Free { slot: 0 },
            Request::Malloc { size: 128, slot: 0 },
            Request::Free { slot: 0 },
        ];
        let r = drive(&mut dpu, alloc.as_mut(), &[stream.clone(), stream]);
        assert_eq!(r.malloc_latencies.len(), 4);
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.timeline.len(), 4);
        assert!(r.finish > Cycles::ZERO);
        // Timeline is in completion order.
        for w in r.timeline.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn free_of_empty_slot_is_noop() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let r = drive(&mut dpu, alloc.as_mut(), &[vec![Request::Free { slot: 0 }]]);
        assert_eq!(r.malloc_latencies.len(), 0);
    }

    #[test]
    fn slot_reuse_frees_previous_allocation() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let stream: Vec<Request> = (0..100)
            .map(|_| Request::Malloc {
                size: 4096,
                slot: 0,
            })
            .collect();
        let r = drive(&mut dpu, alloc.as_mut(), &[stream]);
        // 100 allocations through one slot never exhaust a 1 MB heap.
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.malloc_latencies.len(), 100);
    }

    #[test]
    fn oom_is_counted_not_fatal() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let stream: Vec<Request> = (0..40)
            .map(|i| Request::Malloc {
                size: 64 << 10,
                slot: i,
            })
            .collect();
        let r = drive(&mut dpu, alloc.as_mut(), &[stream]);
        assert!(r.oom_count > 0, "1 MB heap cannot hold 40 × 64 KB");
        assert!(r.malloc_latencies.len() < 40);
    }

    #[test]
    fn contention_inflates_multi_tasklet_latency() {
        // The same per-tasklet stream takes longer per request under
        // 16-way contention on the straw-man's single mutex.
        let stream: Vec<Request> = (0..16)
            .map(|_| Request::Malloc { size: 32, slot: 0 })
            .collect();
        let (mut dpu1, mut a1) = setup(AllocatorKind::StrawMan, 1);
        let r1 = drive(&mut dpu1, a1.as_mut(), std::slice::from_ref(&stream));
        let (mut dpu16, mut a16) = setup(AllocatorKind::StrawMan, 16);
        let streams: Vec<_> = (0..16).map(|_| stream.clone()).collect();
        let r16 = drive(&mut dpu16, a16.as_mut(), &streams);
        assert!(
            r16.malloc_latencies.mean().0 > 2 * r1.malloc_latencies.mean().0,
            "contended mean {} vs solo mean {}",
            r16.malloc_latencies.mean(),
            r1.malloc_latencies.mean()
        );
    }

    #[test]
    fn recorded_drive_replays_byte_identically() {
        let streams: Vec<Vec<Request>> = (0..4)
            .map(|_| {
                (0..16)
                    .flat_map(|i| {
                        [
                            Request::Malloc {
                                size: 32 << (i % 3),
                                slot: i,
                            },
                            Request::Free { slot: i },
                        ]
                    })
                    .collect()
            })
            .collect();
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 4);
        let (direct, trace) = drive_recorded(&mut dpu, alloc.as_mut(), &streams, "micro", 1 << 20);
        let (mut dpu2, mut alloc2) = setup(AllocatorKind::Sw, 4);
        let replayed = pim_trace::replay(&mut dpu2, alloc2.as_mut(), &trace);
        assert_eq!(direct.timeline, replayed.timeline);
        assert_eq!(direct.finish, replayed.finish);
    }

    #[test]
    #[should_panic(expected = "more streams")]
    fn too_many_streams_rejected() {
        let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 1);
        let s = vec![vec![], vec![]];
        drive(&mut dpu, alloc.as_mut(), &s);
    }
}
