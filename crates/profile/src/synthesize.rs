//! Profile-guided size-class synthesis.
//!
//! [`synthesize_table`] turns an [`AllocProfile`] into a custom
//! [`SizeClassTable`] minimizing a modeled cost: internal
//! fragmentation (per-request rounding waste *plus* the eager
//! prepopulation floor — PIM-malloc reserves one
//! [`CACHE_BLOCK_BYTES`]-byte block per class per tasklet at init, so
//! every class a table carries costs reserved heap whether or not it
//! is ever hit) traded against per-tasklet WRAM metadata footprint
//! (each class needs a slot bitmap in scarce scratchpad).
//!
//! Optimal class boundaries always sit at (aligned-up) observed
//! request sizes, so the synthesizer runs an exact dynamic program
//! over those candidates: `dp[k][i]` is the cheapest table of `k`
//! classes whose largest is candidate `i`, built left to right with
//! prefix sums making each segment cost O(1). The largest class is
//! pinned to the largest cacheable candidate so a synthesized table
//! never caches *less* of the profile than the observed workload
//! needs. The whole pipeline is integer/fixed-order arithmetic over
//! `BTreeMap`-sorted inputs: the same profile and objective always
//! synthesize a byte-identical table.

use std::fmt;

use pim_malloc::{SizeClassTable, CACHE_BLOCK_BYTES, SIZE_CLASS_ALIGN};
use serde::{Deserialize, Serialize};

use crate::profile::AllocProfile;

/// Largest request a thread-cache size class may serve; bigger
/// requests bypass to the buddy backend regardless of geometry.
pub const MAX_CLASS_BYTES: u32 = CACHE_BLOCK_BYTES / 2;

/// What the synthesizer optimizes and under which constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisObjective {
    /// Weight on modeled fragmentation bytes (rounding waste plus the
    /// prepopulation floor).
    pub frag_weight: f64,
    /// Weight on WRAM bitmap bytes (summed over tasklets). WRAM is
    /// ~1000x scarcer than MRAM on UPMEM-like parts, so the default
    /// prices one WRAM byte as 16 fragmentation bytes.
    pub wram_weight: f64,
    /// Fewest classes the table may have (clamped to the number of
    /// distinct candidates when the profile is narrower).
    pub min_classes: usize,
    /// Most classes the table may have.
    pub max_classes: usize,
    /// Class-size alignment; must be a multiple of
    /// [`SIZE_CLASS_ALIGN`] and divide [`MAX_CLASS_BYTES`].
    pub alignment: u32,
    /// Optional per-tasklet WRAM bitmap budget in bytes: class counts
    /// whose optimum exceeds it are discarded.
    pub wram_budget_bytes: Option<u32>,
}

impl Default for SynthesisObjective {
    fn default() -> Self {
        SynthesisObjective {
            frag_weight: 1.0,
            wram_weight: 16.0,
            min_classes: 1,
            max_classes: 16,
            alignment: SIZE_CLASS_ALIGN,
            wram_budget_bytes: None,
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The profile recorded no request a size class could serve
    /// (empty, or every request bypasses the thread cache).
    NoCacheableSizes,
    /// The objective itself is contradictory.
    BadObjective(String),
    /// No class count within `[min_classes, max_classes]` fits the
    /// WRAM budget.
    WramBudget {
        /// Cheapest per-tasklet bitmap footprint among the optima.
        needed: u32,
        /// The budget that excluded it.
        budget: u32,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoCacheableSizes => {
                write!(
                    f,
                    "profile has no cacheable request sizes to synthesize from"
                )
            }
            SynthesisError::BadObjective(msg) => write!(f, "bad synthesis objective: {msg}"),
            SynthesisError::WramBudget { needed, budget } => write!(
                f,
                "no feasible table fits the WRAM budget ({needed} B needed, {budget} B allowed)"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesized geometry plus the report predicting its effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesis {
    /// The synthesized size-class table.
    pub table: SizeClassTable,
    /// Predicted deltas versus [`SizeClassTable::paper_default`].
    pub report: SynthesisReport,
}

/// Modeled comparison of a synthesized table against the paper's
/// fixed power-of-two geometry, for the same profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Synthesized classes, ascending.
    pub classes: Vec<u32>,
    /// `classes.len()`.
    pub class_count: usize,
    /// Modeled fragmentation of the synthesized table, bytes.
    pub modeled_frag_bytes: u64,
    /// Modeled fragmentation of the paper table, bytes.
    pub modeled_frag_bytes_paper: u64,
    /// Per-tasklet WRAM bitmap footprint of the synthesized table.
    pub wram_bytes_per_tasklet: u32,
    /// Per-tasklet WRAM bitmap footprint of the paper table.
    pub wram_bytes_per_tasklet_paper: u32,
    /// `modeled_frag_bytes / modeled_frag_bytes_paper` (1.0 when the
    /// paper model is zero).
    pub predicted_frag_ratio: f64,
    /// `wram_bytes_per_tasklet / wram_bytes_per_tasklet_paper`.
    pub predicted_wram_ratio: f64,
    /// Requests too large for any class under either table.
    pub bypass_requests: u64,
}

/// Modeled internal fragmentation of `profile` under `table`, bytes:
/// per-request rounding waste (requested size up to its class size)
/// plus the eager-prepopulation floor of one
/// [`CACHE_BLOCK_BYTES`]-byte block per class per tasklet. Bypass
/// requests contribute nothing (their cost is geometry-independent).
pub fn modeled_frag_bytes(profile: &AllocProfile, table: &SizeClassTable) -> u64 {
    let mut waste = 0u64;
    for (size, count) in profile.histogram.entries() {
        if let Some(idx) = table.class_for(size) {
            waste += count * u64::from(table.class_bytes(idx) - size);
        }
    }
    let floor = table.len() as u64 * profile.n_tasklets as u64 * u64::from(CACHE_BLOCK_BYTES);
    waste + floor
}

/// Per-tasklet WRAM slot-bitmap footprint of `table`, bytes — the
/// same model as `ThreadCache::bitmap_wram_bytes`.
pub fn wram_bitmap_bytes(table: &SizeClassTable) -> u32 {
    table
        .classes()
        .iter()
        .map(|&c| (CACHE_BLOCK_BYTES / c).div_ceil(8))
        .sum()
}

/// Synthesizes the cost-minimal size-class table for `profile` under
/// `objective`, with a report of the predicted deltas versus the
/// paper geometry.
///
/// # Errors
///
/// [`SynthesisError::BadObjective`] for contradictory constraints,
/// [`SynthesisError::NoCacheableSizes`] when nothing in the profile
/// can be cached, [`SynthesisError::WramBudget`] when no feasible
/// class count fits the budget.
pub fn synthesize_table(
    profile: &AllocProfile,
    objective: &SynthesisObjective,
) -> Result<Synthesis, SynthesisError> {
    validate_objective(objective)?;
    let n_tasklets = profile.n_tasklets as u64;

    // Cacheable (size, count) pairs ascending, and the bypass tail.
    let mut cacheable: Vec<(u32, u64)> = Vec::new();
    let mut bypass_requests = 0u64;
    for (size, count) in profile.histogram.entries() {
        if size <= MAX_CLASS_BYTES {
            cacheable.push((size, count));
        } else {
            bypass_requests += count;
        }
    }
    if cacheable.is_empty() {
        return Err(SynthesisError::NoCacheableSizes);
    }

    // Candidate boundaries: observed sizes aligned up, deduplicated.
    // align | MAX_CLASS_BYTES (validated), so candidates stay legal.
    let align = objective.alignment;
    let mut candidates: Vec<u32> = cacheable
        .iter()
        .map(|&(s, _)| s.div_ceil(align) * align)
        .collect();
    candidates.dedup();
    let m = candidates.len();

    // Prefix sums over the cacheable pairs for O(1) segment waste:
    // requests in (candidates[j], candidates[i]] round up to
    // candidates[i], wasting candidates[i]*count - bytes.
    let mut prefix_count = vec![0u64; cacheable.len() + 1];
    let mut prefix_bytes = vec![0u64; cacheable.len() + 1];
    for (i, &(s, c)) in cacheable.iter().enumerate() {
        prefix_count[i + 1] = prefix_count[i] + c;
        prefix_bytes[i + 1] = prefix_bytes[i] + u64::from(s) * c;
    }
    // sizes_upto[i]: how many cacheable pairs have size <= candidates[i].
    let sizes_upto: Vec<usize> = candidates
        .iter()
        .map(|&cand| cacheable.partition_point(|&(s, _)| s <= cand))
        .collect();
    // Cost of one class candidates[i] covering sizes in
    // (candidates[j], candidates[i]] (j = None for the first class).
    let class_cost = |j: Option<usize>, i: usize| -> f64 {
        let lo = j.map_or(0, |j| sizes_upto[j]);
        let hi = sizes_upto[i];
        let count = prefix_count[hi] - prefix_count[lo];
        let bytes = prefix_bytes[hi] - prefix_bytes[lo];
        let waste = u64::from(candidates[i]) * count - bytes;
        let floor = n_tasklets * u64::from(CACHE_BLOCK_BYTES);
        let wram = n_tasklets * u64::from((CACHE_BLOCK_BYTES / candidates[i]).div_ceil(8));
        objective.frag_weight * (waste + floor) as f64 + objective.wram_weight * wram as f64
    };

    // dp[k-1][i]: cheapest k-class table whose largest class is
    // candidates[i] (covering everything <= candidates[i]).
    let k_max = objective.max_classes.min(m);
    let k_min = objective.min_classes.min(m);
    let mut dp = vec![vec![f64::INFINITY; m]; k_max];
    let mut parent = vec![vec![usize::MAX; m]; k_max];
    for (i, cell) in dp[0].iter_mut().enumerate() {
        *cell = class_cost(None, i);
    }
    for k in 1..k_max {
        for i in k..m {
            for j in (k - 1)..i {
                let cost = dp[k - 1][j] + class_cost(Some(j), i);
                // Strict `<` keeps the smallest j on ties: a fixed,
                // deterministic tie-break.
                if cost < dp[k][i] {
                    dp[k][i] = cost;
                    parent[k][i] = j;
                }
            }
        }
    }

    // Finalists: the optimum for each class count k, largest class
    // pinned to the last candidate; then the WRAM budget filters
    // them. Ties on cost keep the smaller k (fewer classes).
    let mut best: Option<(f64, Vec<u32>, u32)> = None;
    let mut cheapest_wram: Option<u32> = None;
    for k in k_min..=k_max {
        let cost = dp[k - 1][m - 1];
        if !cost.is_finite() {
            continue;
        }
        let mut classes = Vec::with_capacity(k);
        let mut i = m - 1;
        for level in (0..k).rev() {
            classes.push(candidates[i]);
            if level > 0 {
                i = parent[level][i];
            }
        }
        classes.reverse();
        let wram: u32 = classes
            .iter()
            .map(|&c| (CACHE_BLOCK_BYTES / c).div_ceil(8))
            .sum();
        cheapest_wram = Some(cheapest_wram.map_or(wram, |w| w.min(wram)));
        if objective.wram_budget_bytes.is_some_and(|b| wram > b) {
            continue;
        }
        if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
            best = Some((cost, classes, wram));
        }
    }
    let Some((_, classes, wram)) = best else {
        return Err(SynthesisError::WramBudget {
            needed: cheapest_wram.unwrap_or(0),
            budget: objective.wram_budget_bytes.unwrap_or(0),
        });
    };

    let table = SizeClassTable::try_new(classes.clone())
        .map_err(|e| SynthesisError::BadObjective(format!("synthesized table invalid: {e}")))?;
    let paper = SizeClassTable::paper_default();
    let frag = modeled_frag_bytes(profile, &table);
    let frag_paper = modeled_frag_bytes(profile, &paper);
    let wram_paper = wram_bitmap_bytes(&paper);
    let report = SynthesisReport {
        class_count: classes.len(),
        classes,
        modeled_frag_bytes: frag,
        modeled_frag_bytes_paper: frag_paper,
        wram_bytes_per_tasklet: wram,
        wram_bytes_per_tasklet_paper: wram_paper,
        predicted_frag_ratio: if frag_paper == 0 {
            1.0
        } else {
            frag as f64 / frag_paper as f64
        },
        predicted_wram_ratio: f64::from(wram) / f64::from(wram_paper),
        bypass_requests,
    };
    Ok(Synthesis { table, report })
}

fn validate_objective(o: &SynthesisObjective) -> Result<(), SynthesisError> {
    let bad = |msg: String| Err(SynthesisError::BadObjective(msg));
    if !o.frag_weight.is_finite() || o.frag_weight < 0.0 {
        return bad(format!(
            "frag_weight {} not finite and non-negative",
            o.frag_weight
        ));
    }
    if !o.wram_weight.is_finite() || o.wram_weight < 0.0 {
        return bad(format!(
            "wram_weight {} not finite and non-negative",
            o.wram_weight
        ));
    }
    if o.min_classes == 0 {
        return bad("min_classes must be at least 1".to_owned());
    }
    if o.min_classes > o.max_classes {
        return bad(format!(
            "min_classes {} exceeds max_classes {}",
            o.min_classes, o.max_classes
        ));
    }
    if o.alignment == 0 || !o.alignment.is_multiple_of(SIZE_CLASS_ALIGN) {
        return bad(format!(
            "alignment {} is not a multiple of {SIZE_CLASS_ALIGN}",
            o.alignment
        ));
    }
    if !MAX_CLASS_BYTES.is_multiple_of(o.alignment) {
        return bad(format!(
            "alignment {} does not divide the {MAX_CLASS_BYTES} B class ceiling",
            o.alignment
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Total objective cost of a table — the quantity the DP
    /// minimizes, recomputed from first principles.
    fn objective_cost(
        profile: &AllocProfile,
        table: &SizeClassTable,
        o: &SynthesisObjective,
    ) -> f64 {
        o.frag_weight * modeled_frag_bytes(profile, table) as f64
            + o.wram_weight * profile.n_tasklets as f64 * f64::from(wram_bitmap_bytes(table))
    }

    fn profile_of(n_tasklets: usize, sizes: &[(u32, u64)]) -> AllocProfile {
        let mut p = AllocProfile::new("test", n_tasklets);
        for &(size, count) in sizes {
            for _ in 0..count {
                p.histogram.record(size);
            }
            p.mallocs += count;
        }
        p
    }

    #[test]
    fn single_size_profile_synthesizes_a_single_class() {
        let p = profile_of(16, &[(64, 1000)]);
        let s = synthesize_table(&p, &SynthesisObjective::default()).unwrap();
        assert_eq!(s.table.classes(), &[64]);
        assert_eq!(s.report.class_count, 1);
        assert!(
            s.report.predicted_frag_ratio < 1.0,
            "drops 7 prepop classes"
        );
        assert!(s.report.predicted_wram_ratio < 1.0);
        assert_eq!(s.report.bypass_requests, 0);
    }

    #[test]
    fn unaligned_sizes_round_up_to_aligned_classes() {
        // Counts high enough that rounding waste outweighs the extra
        // class's prepopulation floor, so both classes survive.
        let p = profile_of(4, &[(20, 500), (300, 500)]);
        let s = synthesize_table(&p, &SynthesisObjective::default()).unwrap();
        assert_eq!(s.table.classes(), &[24, 304]);
        for &c in s.table.classes() {
            assert_eq!(c % SIZE_CLASS_ALIGN, 0);
        }
    }

    #[test]
    fn oversized_requests_bypass_and_do_not_form_classes() {
        let p = profile_of(4, &[(128, 10), (4000, 5)]);
        let s = synthesize_table(&p, &SynthesisObjective::default()).unwrap();
        assert_eq!(s.table.classes(), &[128]);
        assert_eq!(s.report.bypass_requests, 5);
    }

    #[test]
    fn empty_and_bypass_only_profiles_are_rejected() {
        let empty = profile_of(4, &[]);
        assert_eq!(
            synthesize_table(&empty, &SynthesisObjective::default()).unwrap_err(),
            SynthesisError::NoCacheableSizes
        );
        let bypass_only = profile_of(4, &[(4000, 10)]);
        assert_eq!(
            synthesize_table(&bypass_only, &SynthesisObjective::default()).unwrap_err(),
            SynthesisError::NoCacheableSizes
        );
    }

    #[test]
    fn contradictory_objectives_are_rejected() {
        let p = profile_of(4, &[(64, 10)]);
        let cases = [
            SynthesisObjective {
                min_classes: 0,
                ..SynthesisObjective::default()
            },
            SynthesisObjective {
                min_classes: 5,
                max_classes: 2,
                ..SynthesisObjective::default()
            },
            SynthesisObjective {
                alignment: 12,
                ..SynthesisObjective::default()
            },
            SynthesisObjective {
                alignment: 0,
                ..SynthesisObjective::default()
            },
            SynthesisObjective {
                frag_weight: f64::NAN,
                ..SynthesisObjective::default()
            },
            SynthesisObjective {
                wram_weight: -1.0,
                ..SynthesisObjective::default()
            },
        ];
        for o in cases {
            assert!(matches!(
                synthesize_table(&p, &o),
                Err(SynthesisError::BadObjective(_))
            ));
        }
    }

    #[test]
    fn max_classes_caps_the_table() {
        let sizes: Vec<(u32, u64)> = (1..=20).map(|i| (i * 96, 10)).collect();
        let p = profile_of(4, &sizes);
        let o = SynthesisObjective {
            max_classes: 3,
            ..SynthesisObjective::default()
        };
        let s = synthesize_table(&p, &o).unwrap();
        assert!(s.table.len() <= 3);
        // The largest class still covers the largest cacheable size.
        assert_eq!(*s.table.classes().last().unwrap(), 1920);
    }

    #[test]
    fn min_classes_forces_a_wider_table() {
        let p = profile_of(4, &[(16, 10), (500, 10), (2000, 10)]);
        let o = SynthesisObjective {
            min_classes: 3,
            ..SynthesisObjective::default()
        };
        let s = synthesize_table(&p, &o).unwrap();
        assert_eq!(s.table.len(), 3);
    }

    #[test]
    fn wram_budget_filters_class_counts() {
        let p = profile_of(4, &[(16, 1000), (64, 1000), (2048, 1000)]);
        // A 16 B class alone costs (4096/16)/8 = 32 B of bitmap; force
        // a budget that only wide classes can meet.
        let o = SynthesisObjective {
            wram_budget_bytes: Some(2),
            ..SynthesisObjective::default()
        };
        match synthesize_table(&p, &o) {
            Ok(s) => assert!(wram_bitmap_bytes(&s.table) <= 2),
            Err(SynthesisError::WramBudget { needed, budget }) => {
                assert!(needed > budget);
                assert_eq!(budget, 2);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let sizes: Vec<(u32, u64)> = (1..=50u32)
            .map(|i| (i * 40, u64::from(i % 7) + 1))
            .collect();
        let p = profile_of(16, &sizes);
        let o = SynthesisObjective::default();
        let a = synthesize_table(&p, &o).unwrap();
        let b = synthesize_table(&p, &o).unwrap();
        assert_eq!(a, b);
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    }

    #[test]
    fn dp_matches_brute_force_on_small_profiles() {
        // Exhaustively enumerate every subset of candidates that
        // includes the last one, and check the DP finds the cheapest.
        let p = profile_of(4, &[(16, 30), (48, 5), (100, 20), (512, 1), (900, 40)]);
        let o = SynthesisObjective {
            max_classes: 5,
            ..SynthesisObjective::default()
        };
        let candidates = [16u32, 48, 104, 512, 904];
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << candidates.len()) {
            if mask & (1 << (candidates.len() - 1)) == 0 {
                continue; // must include the last candidate
            }
            let classes: Vec<u32> = candidates
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect();
            let table = SizeClassTable::try_new(classes).unwrap();
            best = best.min(objective_cost(&p, &table, &o));
        }
        let s = synthesize_table(&p, &o).unwrap();
        let got = objective_cost(&p, &s.table, &o);
        assert!(
            (got - best).abs() < 1e-6,
            "DP cost {got} != brute-force optimum {best}"
        );
    }

    #[test]
    fn wram_weight_trades_classes_for_fragmentation() {
        let sizes: Vec<(u32, u64)> = (1..=30).map(|i| (i * 64, 20)).collect();
        let p = profile_of(16, &sizes);
        let cheap_wram = SynthesisObjective {
            wram_weight: 0.0,
            ..SynthesisObjective::default()
        };
        let dear_wram = SynthesisObjective {
            wram_weight: 10_000.0,
            ..SynthesisObjective::default()
        };
        let a = synthesize_table(&p, &cheap_wram).unwrap();
        let b = synthesize_table(&p, &dear_wram).unwrap();
        assert!(
            a.table.len() >= b.table.len(),
            "pricier WRAM must not buy more classes ({} vs {})",
            a.table.len(),
            b.table.len()
        );
        assert!(wram_bitmap_bytes(&b.table) <= wram_bitmap_bytes(&a.table));
    }

    #[test]
    fn synthesized_beats_paper_on_a_skewed_profile() {
        // A profile the fixed power-of-two table serves poorly:
        // mid-range sizes just past each power of two.
        let p = profile_of(16, &[(136, 500), (520, 500), (1040, 500)]);
        let s = synthesize_table(&p, &SynthesisObjective::default()).unwrap();
        assert!(
            s.report.modeled_frag_bytes < s.report.modeled_frag_bytes_paper,
            "synthesized {} >= paper {}",
            s.report.modeled_frag_bytes,
            s.report.modeled_frag_bytes_paper
        );
        assert!(s.report.predicted_frag_ratio < 1.0);
    }
}
