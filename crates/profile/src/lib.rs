//! # pim-profile — allocation profiling and profile-guided geometry
//!
//! The paper's PIM-malloc ships one fixed power-of-two size-class
//! table. This crate closes the loop that tunes it per workload:
//!
//! 1. **Record** — [`ProfileRecorder`] wraps any
//!    [`PimAllocator`](pim_malloc::PimAllocator) and observes a live
//!    run into an [`AllocProfile`] without perturbing it (mirroring
//!    `pim_trace::TraceRecorder`), or [`AllocProfile::from_trace`]
//!    derives the same profile purely from a recorded
//!    [`AllocTrace`](pim_trace::AllocTrace). Profiles are versioned
//!    and round-trip losslessly through JSON.
//! 2. **Synthesize** — [`synthesize_table`] runs an exact dynamic
//!    program over candidate class boundaries, minimizing modeled
//!    internal fragmentation (rounding waste plus the eager
//!    prepopulation floor) against WRAM bitmap footprint under a
//!    [`SynthesisObjective`], and reports predicted deltas versus
//!    [`SizeClassTable::paper_default`](pim_malloc::SizeClassTable::paper_default)
//!    in a [`SynthesisReport`].
//! 3. **Replay** — feed the synthesized table back through
//!    `AllocGeometry::with_size_classes` and replay the same trace to
//!    measure the deltas the report predicted (the `repro tune`
//!    experiment in `pim-bench`; `examples/tune_geometry.rs` shows
//!    the loop end to end).
//!
//! Everything here is deterministic: the same trace and objective
//! produce a byte-identical profile, table, and report regardless of
//! execution policy or worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod profile;
pub mod recorder;
pub mod synthesize;

pub use profile::{
    AllocProfile, LifetimeStats, ProfileError, SizeHistogram, LIFETIME_BUCKETS,
    PROFILE_SCHEMA_VERSION, TIMELINE_SAMPLES,
};
pub use recorder::ProfileRecorder;
pub use synthesize::{
    modeled_frag_bytes, synthesize_table, wram_bitmap_bytes, Synthesis, SynthesisError,
    SynthesisObjective, SynthesisReport, MAX_CLASS_BYTES,
};
