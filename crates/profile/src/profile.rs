//! The versioned allocation profile: what a workload *asked* the
//! allocator for, independent of any size-class geometry.
//!
//! An [`AllocProfile`] is the input of the size-class synthesizer: a
//! per-request-size histogram, live-object lifetime statistics, the
//! remote-free fraction, and a peak-bytes timeline. Profiles come from
//! two paths that agree on every count:
//!
//! * [`AllocProfile::from_trace`] — a pure function of an
//!   [`AllocTrace`] (no simulation; lifetimes and the timeline are
//!   measured in *op ticks* of a deterministic round-robin walk).
//! * [`crate::ProfileRecorder`] — a zero-perturbation allocator
//!   wrapper observing a live run (lifetimes and the timeline are
//!   measured in simulated *cycles*).
//!
//! Profiles are versioned and round-trip losslessly through JSON, so a
//! profile captured once can be re-tuned under different objectives
//! without re-running the workload.

use std::collections::BTreeMap;
use std::fmt;

use pim_malloc::SizeClassTable;
use pim_trace::{AllocTrace, TraceOp};
use serde_json::Value;

/// Version stamp written into every serialized profile and required on
/// parse; bump when the format changes incompatibly.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// The serialized `kind` tag distinguishing profile files from other
/// JSON artifacts.
const PROFILE_KIND: &str = "alloc-profile";

/// Log2 lifetime buckets kept by [`LifetimeStats`] (bucket `i` holds
/// lifetimes in `[2^i, 2^(i+1))`; bucket 0 also holds zero).
pub const LIFETIME_BUCKETS: usize = 48;

/// Maximum samples kept in the peak-bytes timeline; longer runs are
/// downsampled with a deterministic stride.
pub const TIMELINE_SAMPLES: usize = 64;

/// Exact per-request-size histogram: how many times each distinct size
/// was requested. Ordered by size (BTreeMap), so iteration — and every
/// derived artifact — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: BTreeMap<u32, u64>,
}

impl SizeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        SizeHistogram::default()
    }

    /// Records one request of `size` bytes (zero-byte requests are
    /// not observable allocator calls and are ignored).
    pub fn record(&mut self, size: u32) {
        if size > 0 {
            *self.counts.entry(size).or_insert(0) += 1;
        }
    }

    /// Pure histogram extraction from a trace: counts every
    /// [`TraceOp::Malloc`] across all streams.
    pub fn from_trace(trace: &AllocTrace) -> Self {
        let mut h = SizeHistogram::new();
        for op in trace.streams.iter().flatten() {
            if let TraceOp::Malloc { size, .. } = *op {
                h.record(size);
            }
        }
        h
    }

    /// `(size, count)` entries, smallest size first.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// Number of distinct request sizes.
    pub fn distinct_sizes(&self) -> usize {
        self.counts.len()
    }

    /// Total requests recorded.
    pub fn total_requests(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total requested bytes.
    pub fn total_requested_bytes(&self) -> u64 {
        self.counts.iter().map(|(&s, &c)| u64::from(s) * c).sum()
    }

    /// Largest request size seen, or `None` for an empty histogram.
    pub fn max_size(&self) -> Option<u32> {
        self.counts.keys().next_back().copied()
    }

    /// Projects the histogram onto a size-class table: per-class
    /// request counts plus the bypass count (requests larger than the
    /// table's biggest class).
    pub fn class_requests(&self, table: &SizeClassTable) -> (Vec<u64>, u64) {
        let mut per_class = vec![0u64; table.len()];
        let mut bypass = 0u64;
        for (size, count) in self.entries() {
            match table.class_for(size) {
                Some(idx) => per_class[idx] += count,
                None => bypass += count,
            }
        }
        (per_class, bypass)
    }
}

/// Live-object lifetime statistics: count, sum, max, and a log2 bucket
/// histogram. Units are whatever the producer measured in —
/// simulated cycles for [`crate::ProfileRecorder`], op ticks for
/// [`AllocProfile::from_trace`] — and are comparable only within one
/// profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeStats {
    /// Completed (malloc, free) pairs observed.
    pub observed: u64,
    /// Sum of all lifetimes.
    pub total: u64,
    /// Longest lifetime.
    pub max: u64,
    /// Log2 buckets: `buckets[i]` counts lifetimes in
    /// `[2^i, 2^(i+1))`; the last bucket absorbs the tail.
    pub buckets: Vec<u64>,
}

impl Default for LifetimeStats {
    fn default() -> Self {
        LifetimeStats {
            observed: 0,
            total: 0,
            max: 0,
            buckets: vec![0; LIFETIME_BUCKETS],
        }
    }
}

impl LifetimeStats {
    /// Records one completed lifetime.
    pub fn record(&mut self, lifetime: u64) {
        self.observed += 1;
        self.total += lifetime;
        self.max = self.max.max(lifetime);
        let bucket = if lifetime == 0 {
            0
        } else {
            (63 - lifetime.leading_zeros() as usize).min(LIFETIME_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Mean lifetime, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.total as f64 / self.observed as f64
        }
    }
}

/// A complete allocation profile of one workload (one DPU's tasklets).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocProfile {
    /// Profile name (trace or workload it was recorded from).
    pub name: String,
    /// Tasklets of the profiled run.
    pub n_tasklets: usize,
    /// Per-request-size histogram.
    pub histogram: SizeHistogram,
    /// Live-object lifetime statistics.
    pub lifetimes: LifetimeStats,
    /// Successful `pim_malloc` calls observed.
    pub mallocs: u64,
    /// Successful `pim_free` calls observed.
    pub frees: u64,
    /// Frees issued by a tasklet other than the allocation's owner.
    pub remote_frees: u64,
    /// Peak live requested bytes.
    pub peak_live_bytes: u64,
    /// `(tick, live requested bytes)` samples in tick order, at most
    /// [`TIMELINE_SAMPLES`] long (deterministically downsampled).
    pub timeline: Vec<(u64, u64)>,
}

impl AllocProfile {
    /// An empty profile.
    pub fn new(name: impl Into<String>, n_tasklets: usize) -> Self {
        AllocProfile {
            name: name.into(),
            n_tasklets,
            histogram: SizeHistogram::new(),
            lifetimes: LifetimeStats::default(),
            mallocs: 0,
            frees: 0,
            remote_frees: 0,
            peak_live_bytes: 0,
            timeline: Vec::new(),
        }
    }

    /// Fraction of observed frees issued cross-tasklet.
    pub fn remote_free_fraction(&self) -> f64 {
        if self.frees == 0 {
            0.0
        } else {
            self.remote_frees as f64 / self.frees as f64
        }
    }

    /// Builds a profile from a trace without running any simulation: a
    /// pure function of the trace bytes, so the same trace always
    /// yields a byte-identical profile.
    ///
    /// The trace's streams are walked in a deterministic round-robin
    /// (op `r` of tasklet 0, op `r` of tasklet 1, …); each processed
    /// op advances a global *tick* that stands in for time. Lifetimes
    /// and the timeline are measured in ticks. Driver semantics match
    /// the replayer: allocating into an occupied slot frees the
    /// shadowed allocation first, local frees of empty slots are
    /// no-ops, and a remote free that arrives before its allocation
    /// waits for it (the replayer parks such frees on a virtual-time
    /// queue; here they apply the moment the `Malloc` lands).
    pub fn from_trace(trace: &AllocTrace) -> Self {
        let mut walk = TraceWalk::new(trace);
        let rounds = trace.streams.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (tid, stream) in trace.streams.iter().enumerate() {
                if let Some(&op) = stream.get(round) {
                    walk.step(tid, op);
                }
            }
        }
        walk.finish()
    }

    /// Encodes the profile as a JSON value.
    pub fn to_json_value(&self) -> Value {
        let histogram: Vec<Value> = self
            .histogram
            .entries()
            .map(|(s, c)| Value::Array(vec![Value::from(u64::from(s)), Value::from(c)]))
            .collect();
        let timeline: Vec<Value> = self
            .timeline
            .iter()
            .map(|&(t, b)| Value::Array(vec![Value::from(t), Value::from(b)]))
            .collect();
        let mut lifetimes = BTreeMap::new();
        lifetimes.insert("observed".to_owned(), Value::from(self.lifetimes.observed));
        lifetimes.insert("total".to_owned(), Value::from(self.lifetimes.total));
        lifetimes.insert("max".to_owned(), Value::from(self.lifetimes.max));
        lifetimes.insert(
            "buckets".to_owned(),
            Value::Array(
                self.lifetimes
                    .buckets
                    .iter()
                    .map(|&b| Value::from(b))
                    .collect(),
            ),
        );
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_owned(),
            Value::from(PROFILE_SCHEMA_VERSION),
        );
        obj.insert("kind".to_owned(), Value::from(PROFILE_KIND));
        obj.insert("name".to_owned(), Value::from(self.name.as_str()));
        obj.insert("n_tasklets".to_owned(), Value::from(self.n_tasklets as u64));
        obj.insert("histogram".to_owned(), Value::Array(histogram));
        obj.insert("lifetimes".to_owned(), Value::Object(lifetimes));
        obj.insert("mallocs".to_owned(), Value::from(self.mallocs));
        obj.insert("frees".to_owned(), Value::from(self.frees));
        obj.insert("remote_frees".to_owned(), Value::from(self.remote_frees));
        obj.insert(
            "peak_live_bytes".to_owned(),
            Value::from(self.peak_live_bytes),
        );
        obj.insert("timeline".to_owned(), Value::Array(timeline));
        Value::Object(obj)
    }

    /// Renders the profile as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a profile from a JSON value, checking version and
    /// structure.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Version`] on a version mismatch,
    /// [`ProfileError::Schema`] on structural problems.
    pub fn from_json_value(v: &Value) -> Result<Self, ProfileError> {
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or(ProfileError::Schema("missing schema_version".to_owned()))?;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(ProfileError::Version { found: version });
        }
        match v.get("kind").and_then(Value::as_str) {
            Some(PROFILE_KIND) => {}
            other => {
                return Err(ProfileError::Schema(format!(
                    "kind {other:?} is not {PROFILE_KIND:?}"
                )))
            }
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or(ProfileError::Schema("missing name".to_owned()))?
            .to_owned();
        let n_tasklets =
            v.get("n_tasklets")
                .and_then(Value::as_u64)
                .ok_or(ProfileError::Schema("missing n_tasklets".to_owned()))? as usize;
        let int = |key: &str| -> Result<u64, ProfileError> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or(ProfileError::Schema(format!("missing {key}")))
        };
        let pairs = |key: &str| -> Result<Vec<(u64, u64)>, ProfileError> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or(ProfileError::Schema(format!("missing {key}")))?
                .iter()
                .map(|pair| {
                    let parts = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or(ProfileError::Schema(format!("{key} entry is not a pair")))?;
                    let a = parts[0]
                        .as_u64()
                        .ok_or(ProfileError::Schema(format!("{key} entry not numeric")))?;
                    let b = parts[1]
                        .as_u64()
                        .ok_or(ProfileError::Schema(format!("{key} entry not numeric")))?;
                    Ok((a, b))
                })
                .collect()
        };
        let mut histogram = SizeHistogram::new();
        for (size, count) in pairs("histogram")? {
            let size = u32::try_from(size)
                .map_err(|_| ProfileError::Schema("histogram size overflows u32".to_owned()))?;
            if size == 0 || count == 0 {
                return Err(ProfileError::Schema(
                    "histogram entries must be non-zero".to_owned(),
                ));
            }
            histogram.counts.insert(size, count);
        }
        let lt = v
            .get("lifetimes")
            .ok_or(ProfileError::Schema("missing lifetimes".to_owned()))?;
        let lt_int = |key: &str| -> Result<u64, ProfileError> {
            lt.get(key)
                .and_then(Value::as_u64)
                .ok_or(ProfileError::Schema(format!("missing lifetimes.{key}")))
        };
        let buckets: Vec<u64> = lt
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or(ProfileError::Schema("missing lifetimes.buckets".to_owned()))?
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or(ProfileError::Schema("bucket not numeric".to_owned()))
            })
            .collect::<Result<_, _>>()?;
        if buckets.len() != LIFETIME_BUCKETS {
            return Err(ProfileError::Schema(format!(
                "{} lifetime buckets (expected {LIFETIME_BUCKETS})",
                buckets.len()
            )));
        }
        let lifetimes = LifetimeStats {
            observed: lt_int("observed")?,
            total: lt_int("total")?,
            max: lt_int("max")?,
            buckets,
        };
        let profile = AllocProfile {
            name,
            n_tasklets,
            histogram,
            lifetimes,
            mallocs: int("mallocs")?,
            frees: int("frees")?,
            remote_frees: int("remote_frees")?,
            peak_live_bytes: int("peak_live_bytes")?,
            timeline: pairs("timeline")?,
        };
        Ok(profile)
    }

    /// Parses a profile from a JSON string.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Json`] on malformed JSON, otherwise as
    /// [`AllocProfile::from_json_value`].
    pub fn from_json(s: &str) -> Result<Self, ProfileError> {
        Self::from_json_value(&serde_json::from_str(s)?)
    }
}

/// State of the deterministic trace walk behind
/// [`AllocProfile::from_trace`].
struct TraceWalk {
    p: AllocProfile,
    /// Per-tasklet slot tables: slot -> (size, birth tick).
    slots: Vec<BTreeMap<u32, (u32, u64)>>,
    /// Remote frees that arrived before their allocation, keyed by
    /// (owner, slot) -> issuing tasklet; applied when the `Malloc`
    /// lands, mirroring the replayer's parked remote frees.
    pending_remote: BTreeMap<(usize, u32), usize>,
    live_bytes: u64,
    tick: u64,
    raw_timeline: Vec<(u64, u64)>,
}

impl TraceWalk {
    fn new(trace: &AllocTrace) -> Self {
        TraceWalk {
            p: AllocProfile::new(trace.name.clone(), trace.n_tasklets),
            slots: vec![BTreeMap::new(); trace.n_tasklets],
            pending_remote: BTreeMap::new(),
            live_bytes: 0,
            tick: 0,
            raw_timeline: Vec::new(),
        }
    }

    /// Frees `(owner, slot)` if live; no-op otherwise.
    fn free_slot(&mut self, owner: usize, slot: u32, remote: bool) {
        if let Some((size, birth)) = self.slots[owner].remove(&slot) {
            self.p.frees += 1;
            if remote {
                self.p.remote_frees += 1;
            }
            self.p.lifetimes.record(self.tick - birth);
            self.live_bytes -= u64::from(size);
        }
    }

    fn step(&mut self, tid: usize, op: TraceOp) {
        self.tick += 1;
        match op {
            TraceOp::Malloc { size, slot } => {
                // Driver semantics: slot reuse frees the shadowed
                // allocation first.
                self.free_slot(tid, slot, false);
                self.p.histogram.record(size);
                self.p.mallocs += 1;
                self.slots[tid].insert(slot, (size, self.tick));
                self.live_bytes += u64::from(size);
                self.p.peak_live_bytes = self.p.peak_live_bytes.max(self.live_bytes);
                if let Some(issuer) = self.pending_remote.remove(&(tid, slot)) {
                    // A parked remote free was waiting on this slot.
                    self.free_slot(tid, slot, issuer != tid);
                }
                self.raw_timeline.push((self.tick, self.live_bytes));
            }
            TraceOp::Free { slot } => {
                self.free_slot(tid, slot, false);
                self.raw_timeline.push((self.tick, self.live_bytes));
            }
            TraceOp::RemoteFree { tasklet, slot } => {
                let owner = tasklet as usize;
                if self.slots[owner].contains_key(&slot) {
                    self.free_slot(owner, slot, owner != tid);
                } else {
                    self.pending_remote.insert((owner, slot), tid);
                }
                self.raw_timeline.push((self.tick, self.live_bytes));
            }
            TraceOp::Compute { .. } => {}
        }
    }

    fn finish(self) -> AllocProfile {
        let mut p = self.p;
        p.timeline = downsample_timeline(self.raw_timeline);
        p
    }
}

/// Downsamples a timeline to at most [`TIMELINE_SAMPLES`] points with
/// a deterministic stride, always keeping the final sample.
pub(crate) fn downsample_timeline(raw: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    if raw.len() <= TIMELINE_SAMPLES {
        return raw;
    }
    let stride = raw.len().div_ceil(TIMELINE_SAMPLES);
    let last = *raw.last().expect("nonempty");
    let mut out: Vec<(u64, u64)> = raw.into_iter().step_by(stride).collect();
    if out.last() != Some(&last) {
        out.push(last);
    }
    out
}

/// Why a serialized profile failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The bytes are not valid JSON.
    Json(serde_json::ParseError),
    /// The JSON is valid but not a well-formed profile.
    Schema(String),
    /// The profile was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u64,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Json(e) => write!(f, "{e}"),
            ProfileError::Schema(msg) => write!(f, "malformed profile: {msg}"),
            ProfileError::Version { found } => write!(
                f,
                "profile schema version {found} unsupported (expected {PROFILE_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<serde_json::ParseError> for ProfileError {
    fn from(e: serde_json::ParseError) -> Self {
        ProfileError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AllocTrace {
        let mut t = AllocTrace::new("sample", 1 << 20, 2);
        t.streams[0] = vec![
            TraceOp::Malloc { size: 64, slot: 0 },
            TraceOp::Compute { cycles: 100 },
            TraceOp::Malloc { size: 100, slot: 1 },
            TraceOp::Free { slot: 0 },
        ];
        t.streams[1] = vec![
            TraceOp::Malloc { size: 64, slot: 0 },
            TraceOp::RemoteFree {
                tasklet: 0,
                slot: 1,
            },
        ];
        t
    }

    #[test]
    fn histogram_counts_sizes() {
        let h = SizeHistogram::from_trace(&sample_trace());
        assert_eq!(h.entries().collect::<Vec<_>>(), vec![(64, 2), (100, 1)]);
        assert_eq!(h.total_requests(), 3);
        assert_eq!(h.total_requested_bytes(), 228);
        assert_eq!(h.max_size(), Some(100));
        assert_eq!(h.distinct_sizes(), 2);
    }

    #[test]
    fn class_projection_counts_bypass() {
        let mut h = SizeHistogram::new();
        h.record(16);
        h.record(16);
        h.record(100);
        h.record(4000);
        let (per_class, bypass) = h.class_requests(&SizeClassTable::paper_default());
        assert_eq!(per_class[0], 2); // 16 B
        assert_eq!(per_class[3], 1); // 100 -> 128 B
        assert_eq!(bypass, 1); // 4000 > 2048
    }

    #[test]
    fn from_trace_observes_counts_lifetimes_and_remote_edges() {
        let p = AllocProfile::from_trace(&sample_trace());
        assert_eq!(p.mallocs, 3);
        assert_eq!(p.frees, 2);
        assert_eq!(p.remote_frees, 1);
        assert_eq!(p.remote_free_fraction(), 0.5);
        assert_eq!(p.lifetimes.observed, 2);
        assert!(p.lifetimes.max > 0);
        // Peak: both 64 B allocs plus the 100 B alloc live at once.
        assert_eq!(p.peak_live_bytes, 228);
        assert!(!p.timeline.is_empty());
        // Live bytes return to zero after the frees... except slot 0
        // of tasklet 1 is never freed (64 B leak by construction).
        assert_eq!(p.timeline.last().unwrap().1, 64);
    }

    #[test]
    fn shadowed_slots_count_as_frees() {
        let mut t = AllocTrace::new("shadow", 1 << 20, 1);
        t.streams[0] = vec![
            TraceOp::Malloc { size: 32, slot: 0 },
            TraceOp::Malloc { size: 48, slot: 0 },
        ];
        let p = AllocProfile::from_trace(&t);
        assert_eq!(p.mallocs, 2);
        assert_eq!(p.frees, 1, "slot reuse frees the shadowed allocation");
        assert_eq!(p.peak_live_bytes, 48);
    }

    #[test]
    fn from_trace_is_deterministic() {
        let t = sample_trace();
        let a = AllocProfile::from_trace(&t);
        let b = AllocProfile::from_trace(&t);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = AllocProfile::from_trace(&sample_trace());
        let json = p.to_json();
        assert_eq!(AllocProfile::from_json(&json).unwrap(), p);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = AllocProfile::from_trace(&sample_trace()).to_json().replace(
            &format!("\"schema_version\":{PROFILE_SCHEMA_VERSION}"),
            "\"schema_version\":99",
        );
        assert_eq!(
            AllocProfile::from_json(&json).unwrap_err(),
            ProfileError::Version { found: 99 }
        );
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(matches!(
            AllocProfile::from_json("not json"),
            Err(ProfileError::Json(_))
        ));
        assert!(matches!(
            AllocProfile::from_json("{}"),
            Err(ProfileError::Schema(_))
        ));
        let wrong_kind = AllocProfile::from_trace(&sample_trace())
            .to_json()
            .replace(PROFILE_KIND, "other");
        assert!(matches!(
            AllocProfile::from_json(&wrong_kind),
            Err(ProfileError::Schema(_))
        ));
    }

    #[test]
    fn lifetime_buckets_are_log2() {
        let mut lt = LifetimeStats::default();
        lt.record(0);
        lt.record(1);
        lt.record(7);
        lt.record(1024);
        assert_eq!(lt.observed, 4);
        assert_eq!(lt.buckets[0], 2); // 0 and 1
        assert_eq!(lt.buckets[2], 1); // 7 in [4, 8)
        assert_eq!(lt.buckets[10], 1); // 1024 in [1024, 2048)
        assert_eq!(lt.max, 1024);
        assert!(lt.mean() > 0.0);
    }

    #[test]
    fn long_timelines_downsample_deterministically() {
        let raw: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * 2)).collect();
        let down = downsample_timeline(raw.clone());
        assert!(down.len() <= TIMELINE_SAMPLES + 1);
        assert_eq!(down.first(), Some(&(0, 0)));
        assert_eq!(down.last(), Some(&(999, 1998)));
        assert_eq!(down, downsample_timeline(raw));
    }
}
