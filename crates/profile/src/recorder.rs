//! Recording allocation profiles from live runs.
//!
//! [`ProfileRecorder`] wraps any [`PimAllocator`] and observes the
//! stream of calls — request sizes, live-object lifetimes, remote-free
//! edges, and the live-bytes timeline — into an [`AllocProfile`].
//! Like `pim_trace::TraceRecorder` (which it mirrors), the recorder
//! only *reads* the context clock and never issues simulated work of
//! its own, so wrapping an allocator never perturbs the run being
//! profiled: the workload's results are identical with and without it.

use std::any::Any;
use std::collections::HashMap;

use pim_malloc::{AllocError, AllocStats, PimAllocator};
use pim_sim::TaskletCtx;

use crate::profile::{downsample_timeline, AllocProfile};

/// A [`PimAllocator`] wrapper that accumulates an [`AllocProfile`]
/// while forwarding every call to the wrapped allocator.
#[derive(Debug)]
pub struct ProfileRecorder<A> {
    inner: A,
    profile: AllocProfile,
    /// Live address → (owner tasklet, requested size, birth cycles).
    live: HashMap<u32, (usize, u32, u64)>,
    live_bytes: u64,
    /// Undownsampled `(cycles, live bytes)` samples; collapsed on
    /// [`ProfileRecorder::into_profile`].
    raw_timeline: Vec<(u64, u64)>,
}

impl<A: PimAllocator> ProfileRecorder<A> {
    /// Wraps `inner`, profiling a run named `name` across
    /// `n_tasklets` tasklets.
    pub fn new(inner: A, name: impl Into<String>, n_tasklets: usize) -> Self {
        ProfileRecorder {
            inner,
            profile: AllocProfile::new(name, n_tasklets),
            live: HashMap::new(),
            live_bytes: 0,
            raw_timeline: Vec::new(),
        }
    }

    /// The wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Finishes profiling, returning the profile and the allocator.
    /// Lifetimes and the timeline are in simulated cycles.
    pub fn into_profile(mut self) -> (AllocProfile, A) {
        self.profile.timeline = downsample_timeline(self.raw_timeline);
        (self.profile, self.inner)
    }
}

impl<A: PimAllocator> PimAllocator for ProfileRecorder<A> {
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        let tid = ctx.tid();
        let result = self.inner.pim_malloc(ctx, size);
        if let Ok(addr) = result {
            let now = ctx.now().0;
            self.profile.histogram.record(size);
            self.profile.mallocs += 1;
            self.live.insert(addr, (tid, size, now));
            self.live_bytes += u64::from(size);
            self.profile.peak_live_bytes = self.profile.peak_live_bytes.max(self.live_bytes);
            self.raw_timeline.push((now, self.live_bytes));
        }
        result
    }

    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        let tid = ctx.tid();
        let result = self.inner.pim_free(ctx, addr);
        if result.is_ok() {
            // Frees of addresses the recorder never saw allocated
            // (e.g. a run profiled mid-flight) stay unobserved rather
            // than corrupting the counts.
            if let Some((owner, size, birth)) = self.live.remove(&addr) {
                let now = ctx.now().0;
                self.profile.frees += 1;
                if owner != tid {
                    self.profile.remote_frees += 1;
                }
                self.profile.lifetimes.record(now.saturating_sub(birth));
                self.live_bytes -= u64::from(size);
                self.raw_timeline.push((now, self.live_bytes));
            }
        }
        result
    }

    fn alloc_stats(&self) -> &AllocStats {
        self.inner.alloc_stats()
    }

    fn as_any(&self) -> &dyn Any {
        // Forward so implementation-specific stats probes still find
        // the real allocator type.
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_malloc::{AllocGeometry, PimMalloc};
    use pim_sim::{Cycles, DpuConfig, DpuSim};

    fn setup(tasklets: usize) -> (DpuSim, ProfileRecorder<PimMalloc>) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        let cfg = AllocGeometry::sw(tasklets).with_heap_size(1 << 20).build();
        let inner = PimMalloc::init(&mut dpu, cfg).expect("init");
        let rec = ProfileRecorder::new(inner, "test", tasklets);
        (dpu, rec)
    }

    #[test]
    fn profiles_sizes_lifetimes_and_remote_edges() {
        let (mut dpu, mut rec) = setup(2);
        let a = {
            let mut ctx = dpu.ctx(0);
            rec.pim_malloc(&mut ctx, 64).unwrap()
        };
        let b = {
            let mut ctx = dpu.ctx(0);
            rec.pim_malloc(&mut ctx, 200).unwrap()
        };
        {
            let mut ctx = dpu.ctx(0);
            ctx.instrs(500);
            rec.pim_free(&mut ctx, a).unwrap(); // local
        }
        {
            let mut ctx = dpu.ctx(1);
            rec.pim_free(&mut ctx, b).unwrap(); // remote
        }
        let (p, _alloc) = rec.into_profile();
        assert_eq!(
            p.histogram.entries().collect::<Vec<_>>(),
            vec![(64, 1), (200, 1)]
        );
        assert_eq!(p.mallocs, 2);
        assert_eq!(p.frees, 2);
        assert_eq!(p.remote_frees, 1);
        assert_eq!(p.peak_live_bytes, 264);
        assert_eq!(p.lifetimes.observed, 2);
        assert!(p.lifetimes.max >= 500, "lifetime spans the compute gap");
        assert_eq!(p.timeline.last().unwrap().1, 0);
    }

    #[test]
    fn failed_calls_are_not_profiled() {
        let (mut dpu, mut rec) = setup(1);
        {
            let mut ctx = dpu.ctx(0);
            assert!(rec.pim_malloc(&mut ctx, 1 << 30).is_err());
            assert!(rec.pim_free(&mut ctx, 0xdead_beef).is_err());
        }
        let (p, _alloc) = rec.into_profile();
        assert_eq!(p.mallocs, 0);
        assert_eq!(p.frees, 0);
        assert_eq!(p.histogram.total_requests(), 0);
        assert!(p.timeline.is_empty());
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        // The same call sequence with and without the recorder leaves
        // identical clocks and addresses.
        let run = |record: bool| -> (Vec<u32>, Cycles) {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(2));
            let cfg = AllocGeometry::sw(2).with_heap_size(1 << 20).build();
            let inner = PimMalloc::init(&mut dpu, cfg).expect("init");
            let mut alloc: Box<dyn PimAllocator> = if record {
                Box::new(ProfileRecorder::new(inner, "p", 2))
            } else {
                Box::new(inner)
            };
            let mut addrs = Vec::new();
            for i in 0..10u32 {
                let tid = (i % 2) as usize;
                let mut ctx = dpu.ctx(tid);
                addrs.push(alloc.pim_malloc(&mut ctx, 32 + i).unwrap());
            }
            (addrs, dpu.max_clock())
        };
        assert_eq!(run(true), run(false));
    }
}
