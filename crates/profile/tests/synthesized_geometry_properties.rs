//! Property coverage of the synthesis → allocator pipeline: any table
//! the synthesizer emits from any profile must be a *valid* geometry —
//! the allocator built on it never panics, keeps its fragmentation
//! accounting closed under arbitrary alloc/free interleavings, and
//! stays tier-differentially identical (three-tier vs two-tier) just
//! like the paper's fixed power-of-two table.

use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc, SizeClassTable, TierPolicy};
use pim_profile::{synthesize_table, AllocProfile, SynthesisObjective};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

const N_TASKLETS: usize = 4;
const HEAP_SIZE: u32 = 1 << 20;

/// A random profile: up to 24 distinct (size, count) pairs.
fn profile_strategy() -> impl Strategy<Value = AllocProfile> {
    proptest::collection::vec((1u32..8192, 1u64..200), 1..24).prop_map(|pairs| {
        let mut p = AllocProfile::new("prop", N_TASKLETS);
        for (size, count) in pairs {
            for _ in 0..count {
                p.histogram.record(size);
            }
            p.mallocs += count;
        }
        p
    })
}

/// A random (but valid) objective.
fn objective_strategy() -> impl Strategy<Value = SynthesisObjective> {
    (0.0f64..10.0, 0.0f64..100.0, 1usize..4, 0usize..16, 1u32..4).prop_map(
        |(frag_weight, wram_weight, min_classes, extra, align_pow)| SynthesisObjective {
            frag_weight,
            wram_weight,
            min_classes,
            max_classes: min_classes + extra,
            alignment: 8 << align_pow.min(3), // 16/32/64: divide 2048
            wram_budget_bytes: None,
        },
    )
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc {
        tid: usize,
        size: u32,
    },
    LocalFree {
        tid: usize,
        victim: usize,
    },
    RemoteFree {
        tid: usize,
        owner: usize,
        victim: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..N_TASKLETS, 1u32..8192).prop_map(|(tid, size)| Op::Alloc { tid, size }),
        2 => (0..N_TASKLETS, any::<usize>())
            .prop_map(|(tid, victim)| Op::LocalFree { tid, victim }),
        2 => (0..N_TASKLETS, 0..N_TASKLETS, any::<usize>())
            .prop_map(|(tid, owner, victim)| Op::RemoteFree { tid, owner, victim }),
    ]
}

/// Everything a trial observes that must be geometry-stable across
/// tier policies.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<Result<u32, String>>,
    live_allocations: usize,
    requested_live: u64,
    reserved_live: u64,
    backend_free_bytes: u64,
}

/// Runs `ops` on an allocator built with the given size-class table
/// under `policy`; panics (failing the property) if the allocator
/// misbehaves structurally.
fn run(policy: TierPolicy, table: &SizeClassTable, ops: &[Op]) -> Observed {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(N_TASKLETS));
    let mut geom = AllocGeometry::sw(N_TASKLETS)
        .with_heap_size(HEAP_SIZE)
        .with_size_classes(table.clone());
    if policy == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
    let mut live: Vec<Vec<u32>> = vec![Vec::new(); N_TASKLETS];
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        match *op {
            Op::Alloc { tid, size } => {
                let mut ctx = dpu.ctx(tid);
                match pm.pim_malloc(&mut ctx, size) {
                    Ok(addr) => {
                        live[tid].push(addr);
                        outcomes.push(Ok(addr));
                    }
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::LocalFree { tid, victim } => {
                if live[tid].is_empty() {
                    continue;
                }
                let idx = victim % live[tid].len();
                let addr = live[tid].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::RemoteFree { tid, owner, victim } => {
                if live[owner].is_empty() {
                    continue;
                }
                let idx = victim % live[owner].len();
                let addr = live[owner].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
        }
    }
    // Drain everything that is still live: accounting must close.
    for (tid, pool) in live.iter_mut().enumerate() {
        for addr in std::mem::take(pool) {
            let mut ctx = dpu.ctx(tid);
            pm.pim_free(&mut ctx, addr).expect("drain free");
        }
    }
    assert_eq!(pm.live_allocations(), 0, "drain left live allocations");
    assert_eq!(pm.frag().requested_live(), 0, "requested-live leak");
    pm.backend().check_invariants();
    Observed {
        outcomes,
        live_allocations: pm.live_allocations(),
        requested_live: pm.frag().requested_live(),
        reserved_live: pm.frag().reserved_live(),
        backend_free_bytes: pm.backend().free_bytes(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any synthesized table passes `SizeClassTable::try_new` — the
    /// synthesizer can never emit a geometry the builder rejects —
    /// and synthesis is a pure function of (profile, objective).
    #[test]
    fn synthesized_tables_are_valid_and_deterministic(
        profile in profile_strategy(),
        objective in objective_strategy(),
    ) {
        let Ok(a) = synthesize_table(&profile, &objective) else {
            // NoCacheableSizes (all requests > 2048) is legitimate.
            return Ok(());
        };
        prop_assert!(SizeClassTable::try_new(a.table.classes().to_vec()).is_ok());
        prop_assert!(a.table.len() <= objective.max_classes);
        // Largest class covers the largest cacheable observed size.
        let max_cacheable = profile
            .histogram
            .entries()
            .filter(|&(s, _)| s <= pim_profile::MAX_CLASS_BYTES)
            .map(|(s, _)| s)
            .max()
            .expect("synthesis succeeded, so a cacheable size exists");
        prop_assert!(a.table.class_for(max_cacheable).is_some());
        let b = synthesize_table(&profile, &objective).expect("second run");
        prop_assert_eq!(a.table.classes(), b.table.classes());
        prop_assert_eq!(a.report, b.report);
    }

    /// An allocator built on a synthesized table upholds the same
    /// invariants as the paper geometry under random interleavings:
    /// no panics, closed accounting after a full drain, and identical
    /// observable behavior across the two free-path hierarchies.
    #[test]
    fn synthesized_geometry_upholds_allocator_invariants(
        profile in profile_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let Ok(synth) = synthesize_table(&profile, &SynthesisObjective::default()) else {
            return Ok(());
        };
        let three = run(TierPolicy::ThreeTier, &synth.table, &ops);
        let two = run(TierPolicy::TwoTier, &synth.table, &ops);
        prop_assert_eq!(&three, &two);
    }
}
