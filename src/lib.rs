//! Workspace-level integration-test and example host for the PIM-malloc reproduction.
//!
//! The facade re-exports the workspace's primary entry points so
//! downstream consumers can depend on one crate:
//!
//! * [`SimContext`] — the unified execution context (transfer model,
//!   host batching, executor policy, seed, fault plan) every
//!   simulation config embeds; [`SimContextBuilder`] for fluent
//!   construction.
//! * The serving frontend: [`serve`] / [`saturation_sweep`] with
//!   [`ServeConfig`], [`ArrivalProcess`], [`RequestClass`] and their
//!   reports — including the self-healing knobs ([`RetryPolicy`]) and
//!   the degraded-capacity report section ([`FaultSummary`]).
//! * The execution knobs those APIs take: [`ExecPolicy`],
//!   [`HostBatching`], and the seeded [`FaultPlan`] fault schedule.
//! * The allocator core: [`PimMalloc`] behind the [`AllocGeometry`]
//!   builder (size classes via [`SizeClassTable`], free-path hierarchy
//!   via [`TierPolicy`]/[`TierConfig`]), plus the [`PimAllocator`]
//!   object-safe trait.
//! * Profile-guided geometry: [`ProfileRecorder`] / [`AllocProfile`]
//!   capture what a workload asks the allocator for, and
//!   [`synthesize_table`] turns a profile into a custom
//!   [`SizeClassTable`] under a [`SynthesisObjective`] (see
//!   `examples/tune_geometry.rs` for the full record → synthesize →
//!   replay loop).

pub use pim_malloc::{
    AllocGeometry, AllocStats, BackendKind, GeometryError, PimAllocator, PimMalloc,
    PimMallocConfig, SizeClassTable, TierConfig, TierPolicy,
};
pub use pim_profile::{
    synthesize_table, AllocProfile, ProfileRecorder, Synthesis, SynthesisObjective, SynthesisReport,
};
pub use pim_serving::{
    estimated_capacity_rps, saturation_sweep, serve, ArrivalProcess, FaultSummary, LoadPoint,
    RequestClass, RetryPolicy, SaturationReport, ServeConfig, ServeReport,
};
pub use pim_sim::{ExecPolicy, FaultPlan, HostBatching, ShardFault, SimContext, SimContextBuilder};
