//! Workspace-level integration-test and example host for the PIM-malloc reproduction.
