//! Cross-validation: the serving simulator's *analytic* decode-step
//! model must agree with the *measured* attention kernel running on
//! the DPU simulator with a real allocator — the two layers of the
//! reproduction telling the same story.

use pim_sim::{DpuConfig, DpuSim};
use pim_workloads::llm::{AttentionKernel, LlmConfig, ServingConfig};
use pim_workloads::AllocatorKind;

/// Measures one decode step of a `batch`-request kernel at a given
/// context length, in seconds.
fn measured_step_secs(batch: usize, context: u32) -> f64 {
    let cfg = LlmConfig::default();
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
    let mut alloc = AllocatorKind::HwSw.build(&mut dpu, 16, 32 << 20);
    let mut kernel = AttentionKernel::new(cfg);
    for r in 0..batch {
        let mut ctx = dpu.ctx(r % 16);
        kernel.admit(&mut ctx, alloc.as_mut(), context).unwrap();
    }
    let step = kernel.decode_step(&mut dpu, alloc.as_mut()).unwrap();
    step.as_secs(dpu.config().cost.clock_mhz)
}

/// The serving simulator's analytic attention time for the same state.
fn analytic_step_secs(batch: usize, context: u32) -> f64 {
    let cfg = ServingConfig::default();
    let kv_read = batch as u64 * u64::from(context) * cfg.llm.kv_bytes_per_token_per_dpu();
    cfg.launch_secs + kv_read as f64 / cfg.mram_bw_bytes_per_s
}

#[test]
fn analytic_and_measured_attention_agree_within_an_order_of_magnitude() {
    // The analytic model is bandwidth-only; the kernel additionally
    // pays MAC instructions (PrIM finds DPU GEMV compute-bound) and a
    // second pass for V, so it sits a small constant factor above.
    for (batch, context) in [(4usize, 64u32), (8, 128), (16, 128)] {
        let measured = measured_step_secs(batch, context);
        let analytic = analytic_step_secs(batch, context);
        let ratio = measured / analytic;
        assert!(
            (1.0..12.0).contains(&ratio),
            "batch {batch} ctx {context}: measured {measured:.6}s vs analytic {analytic:.6}s \
             (ratio {ratio:.2})"
        );
    }
}

#[test]
fn both_models_scale_linearly_with_context() {
    let m1 = measured_step_secs(4, 64);
    let m2 = measured_step_secs(4, 128);
    let a1 = analytic_step_secs(4, 64);
    let a2 = analytic_step_secs(4, 128);
    let m_scale = m2 / m1;
    let a_scale = a2 / a1;
    // Both grow with context; the kernel grows at least as fast (its
    // per-byte compute term scales linearly while fixed overheads
    // shrink relatively).
    assert!(
        a_scale > 1.2,
        "analytic must scale with context: x{a_scale:.2}"
    );
    assert!(
        m_scale > 1.2,
        "measured must scale with context: x{m_scale:.2}"
    );
    assert!(
        m_scale >= a_scale - 0.3,
        "kernel must not scale slower: x{m_scale:.2} vs x{a_scale:.2}"
    );
}

#[test]
fn kernel_allocation_overhead_matches_microbench_ranking() {
    // The kernel's extra step time under the straw-man must come from
    // allocation (the only differing component).
    let step = |kind: AllocatorKind| {
        let cfg = LlmConfig::default();
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut alloc = kind.build(&mut dpu, 16, 32 << 20);
        let mut kernel = AttentionKernel::new(cfg);
        for r in 0..8 {
            let mut ctx = dpu.ctx(r % 16);
            kernel.admit(&mut ctx, alloc.as_mut(), 16).unwrap();
        }
        kernel
            .decode_step(&mut dpu, alloc.as_mut())
            .unwrap()
            .as_secs(350)
    };
    let straw = step(AllocatorKind::StrawMan);
    let sw = step(AllocatorKind::Sw);
    let hw = step(AllocatorKind::HwSw);
    assert!(straw > sw, "straw-man {straw} vs SW {sw}");
    assert!(hw <= sw, "HW/SW {hw} vs SW {sw}");
}
