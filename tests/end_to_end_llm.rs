//! End-to-end LLM-serving integration: KV arithmetic, admission
//! control, the allocators, and the serving simulator must compose
//! into the paper's Figure 4(b)/18 behaviour.

use pim_workloads::llm::{
    fixed_trace, kv_fragmentation, max_batch_size, run_serving, sharegpt_like_trace, KvScheme,
    LlmConfig, ServingConfig,
};
use pim_workloads::AllocatorKind;

#[test]
fn batch_capacity_is_conserved_by_memory_accounting() {
    let cfg = LlmConfig::default();
    let trace = sharegpt_like_trace(400, 10.0, cfg.max_seq_len, 3);
    let dy = max_batch_size(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
    // The admitted requests' dynamic KV must fit the heap; one more
    // request must not.
    let used: u64 = trace[..dy.max_batch]
        .iter()
        .map(|r| cfg.dynamic_bytes_per_request(r.total_tokens()))
        .sum();
    assert!(used <= u64::from(cfg.heap_bytes.next_power_of_two()));
    let with_next: u64 = used + cfg.dynamic_bytes_per_request(trace[dy.max_batch].total_tokens());
    // Allow the allocator's own overheads (pre-population, rounding) a
    // margin: the next request must overflow the raw heap less ~3%.
    assert!(
        with_next > u64::from(cfg.heap_bytes) * 97 / 100,
        "admission stopped early: {with_next} of {}",
        cfg.heap_bytes
    );
}

#[test]
fn serving_conserves_tokens_under_every_scheme() {
    let cfg = ServingConfig::default();
    let trace = fixed_trace(50, 10.0);
    for scheme in [
        KvScheme::Static,
        KvScheme::Dynamic(AllocatorKind::StrawMan),
        KvScheme::Dynamic(AllocatorKind::Sw),
        KvScheme::Dynamic(AllocatorKind::HwSw),
    ] {
        let r = run_serving(scheme, &cfg, &trace);
        let produced = r.throughput_tokens_per_s * r.makespan_s;
        assert!(
            (produced - 50.0 * 256.0).abs() < 1.0,
            "{scheme:?} lost tokens: {produced}"
        );
        assert!(r.tpot_p50_ms <= r.tpot_p95_ms && r.tpot_p95_ms <= r.tpot_p99_ms);
    }
}

#[test]
fn figure18_shape_holds_end_to_end() {
    let cfg = ServingConfig::default();
    let trace = fixed_trace(100, 10.0);
    let st = run_serving(KvScheme::Static, &cfg, &trace);
    let straw = run_serving(KvScheme::Dynamic(AllocatorKind::StrawMan), &cfg, &trace);
    let sw = run_serving(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &trace);
    let hw = run_serving(KvScheme::Dynamic(AllocatorKind::HwSw), &cfg, &trace);
    // Throughput: HW/SW best, well above static; straw-man pays for
    // its allocation latency.
    assert!(hw.throughput_tokens_per_s >= sw.throughput_tokens_per_s);
    assert!(hw.throughput_tokens_per_s > 1.2 * st.throughput_tokens_per_s);
    assert!(sw.throughput_tokens_per_s > straw.throughput_tokens_per_s);
    // TPOT: static cheapest per token; straw-man worst.
    assert!(st.tpot_p50_ms <= hw.tpot_p50_ms);
    assert!(hw.tpot_p50_ms <= sw.tpot_p50_ms);
    assert!(straw.tpot_p50_ms > sw.tpot_p50_ms);
    // Dynamic schemes form strictly larger batches.
    assert!(hw.peak_batch > st.peak_batch);
}

#[test]
fn fragmentation_table_row_matches_paper_shape() {
    let cfg = LlmConfig::default();
    let eager = kv_fragmentation(false, &cfg, 8, 32);
    let lazy = kv_fragmentation(true, &cfg, 8, 32);
    assert!(eager > lazy, "eager {eager} vs lazy {lazy}");
    assert!((lazy - 1.0).abs() < 0.02, "512 B packs 4 KB blocks: {lazy}");
}

#[test]
fn trace_length_distribution_drives_capacity_gap() {
    // With a *degenerate* trace (every output at the max), dynamic and
    // static converge; skewed traces open the Figure 4(b) gap.
    let cfg = LlmConfig::default();
    let uniform: Vec<_> = (0..200)
        .map(|i| pim_workloads::llm::RequestSpec {
            prompt_tokens: cfg.max_seq_len / 2,
            output_tokens: cfg.max_seq_len / 2,
            arrival_s: i as f64 / 10.0,
        })
        .collect();
    let skewed = sharegpt_like_trace(200, 10.0, cfg.max_seq_len, 17);
    let st = max_batch_size(KvScheme::Static, &cfg, &uniform).max_batch;
    let dy_uniform = max_batch_size(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &uniform).max_batch;
    let dy_skewed = max_batch_size(KvScheme::Dynamic(AllocatorKind::Sw), &cfg, &skewed).max_batch;
    assert!(
        dy_uniform <= st + st / 2,
        "worst-case-length trace leaves little dynamic headroom: {dy_uniform} vs {st}"
    );
    assert!(
        dy_skewed > dy_uniform,
        "skew must open the gap: {dy_skewed} vs {dy_uniform}"
    );
}
