//! Cross-crate contract tests: every allocator design must satisfy the
//! same behavioural contract through the `dyn PimAllocator` interface
//! the workloads use.

use std::collections::BTreeMap;

use pim_malloc::{AllocError, AllocGeometry, BackendKind, PimAllocator, PimMalloc};
use pim_sim::{BuddyCacheConfig, DpuConfig, DpuSim};
use pim_workloads::AllocatorKind;

const KINDS: [AllocatorKind; 5] = [
    AllocatorKind::StrawMan,
    AllocatorKind::Sw,
    AllocatorKind::SwLazy,
    AllocatorKind::HwSw,
    AllocatorKind::SwFineLru,
];

fn setup(kind: AllocatorKind, tasklets: usize) -> (DpuSim, Box<dyn PimAllocator>) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
    let alloc = kind.build(&mut dpu, tasklets, 4 << 20);
    (dpu, alloc)
}

#[test]
fn every_design_returns_disjoint_aligned_blocks() {
    for kind in KINDS {
        let (mut dpu, mut alloc) = setup(kind, 8);
        let mut spans: BTreeMap<u32, u32> = BTreeMap::new();
        for i in 0..200u32 {
            let size = [16u32, 80, 256, 1000, 4096][i as usize % 5];
            let tid = (i as usize) % 8;
            let mut ctx = dpu.ctx(tid);
            let addr = alloc
                .pim_malloc(&mut ctx, size)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let occupied = size.next_power_of_two().max(16);
            if let Some((&pa, &pl)) = spans.range(..=addr).next_back() {
                assert!(pa + pl <= addr, "{kind:?}: {pa:#x}+{pl} overlaps {addr:#x}");
            }
            if let Some((&na, _)) = spans.range(addr + 1..).next() {
                assert!(addr + occupied <= na, "{kind:?}: {addr:#x} overlaps next");
            }
            spans.insert(addr, occupied);
        }
    }
}

#[test]
fn every_design_rejects_invalid_operations() {
    for kind in KINDS {
        let (mut dpu, mut alloc) = setup(kind, 1);
        let mut ctx = dpu.ctx(0);
        assert!(
            matches!(
                alloc.pim_malloc(&mut ctx, 0),
                Err(AllocError::InvalidSize { .. }) | Err(AllocError::OutOfMemory { .. })
            ),
            "{kind:?} must reject zero-size requests"
        );
        assert!(
            matches!(
                alloc.pim_free(&mut ctx, 0x0dea_d000),
                Err(AllocError::InvalidFree { .. })
            ),
            "{kind:?} must reject bogus frees"
        );
        // Double free.
        let addr = alloc.pim_malloc(&mut ctx, 64).unwrap();
        alloc.pim_free(&mut ctx, addr).unwrap();
        assert!(
            matches!(
                alloc.pim_free(&mut ctx, addr),
                Err(AllocError::InvalidFree { .. })
            ),
            "{kind:?} must reject double frees"
        );
    }
}

#[test]
fn quarantine_contract_holds_through_the_dyn_interface() {
    // A quarantine budget is a PimMalloc config knob, but the sealing
    // behaviour must be observable through the same `dyn PimAllocator`
    // surface the workloads use: invalid frees within the budget are
    // reported individually, the overrun seals the allocator, and a
    // sealed allocator refuses even valid traffic.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let cfg = AllocGeometry::sw(1).with_quarantine(2).build();
    let mut alloc: Box<dyn PimAllocator> = Box::new(PimMalloc::init(&mut dpu, cfg).expect("init"));
    let mut ctx = dpu.ctx(0);
    let live = alloc.pim_malloc(&mut ctx, 128).unwrap();
    for i in 0..2u32 {
        assert!(matches!(
            alloc.pim_free(&mut ctx, 0x0dea_d000 + i),
            Err(AllocError::InvalidFree { .. })
        ));
    }
    assert!(matches!(
        alloc.pim_free(&mut ctx, 0x0dea_d100),
        Err(AllocError::Quarantined { invalid_frees: 3 })
    ));
    assert!(matches!(
        alloc.pim_malloc(&mut ctx, 64),
        Err(AllocError::Quarantined { .. })
    ));
    assert!(matches!(
        alloc.pim_free(&mut ctx, live),
        Err(AllocError::Quarantined { .. })
    ));
}

#[test]
fn every_design_recovers_all_memory_after_churn() {
    for kind in KINDS {
        let (mut dpu, mut alloc) = setup(kind, 4);
        // Three rounds of allocate-everything / free-everything.
        for round in 0..3 {
            let mut live = Vec::new();
            for i in 0..120u32 {
                let size = [32u32, 128, 512, 2048, 8192][(i as usize + round) % 5];
                let tid = (i as usize) % 4;
                let mut ctx = dpu.ctx(tid);
                live.push((tid, alloc.pim_malloc(&mut ctx, size).unwrap()));
            }
            for (tid, addr) in live {
                let mut ctx = dpu.ctx(tid);
                alloc.pim_free(&mut ctx, addr).unwrap();
            }
        }
        // After full churn a heap-half allocation must still succeed:
        // nothing leaked, coalescing worked.
        let mut ctx = dpu.ctx(0);
        let big = alloc.pim_malloc(&mut ctx, 1 << 20);
        assert!(big.is_ok(), "{kind:?} leaked memory across churn rounds");
    }
}

#[test]
fn oom_is_recoverable_not_fatal() {
    for kind in KINDS {
        let (mut dpu, mut alloc) = setup(kind, 1);
        let mut live = Vec::new();
        loop {
            let mut ctx = dpu.ctx(0);
            match alloc.pim_malloc(&mut ctx, 256 << 10) {
                Ok(a) => live.push(a),
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("{kind:?}: unexpected {e}"),
            }
        }
        assert!(!live.is_empty(), "{kind:?} allocated nothing before OOM");
        // Free one block; the same request must now succeed.
        let victim = live.pop().unwrap();
        let mut ctx = dpu.ctx(0);
        alloc.pim_free(&mut ctx, victim).unwrap();
        assert!(
            alloc.pim_malloc(&mut ctx, 256 << 10).is_ok(),
            "{kind:?} must recover after a free"
        );
    }
}

#[test]
fn latency_ordering_straw_man_worst_for_small_allocs() {
    let mut means = Vec::new();
    for kind in [
        AllocatorKind::StrawMan,
        AllocatorKind::Sw,
        AllocatorKind::HwSw,
    ] {
        let (mut dpu, mut alloc) = setup(kind, 1);
        for _ in 0..64 {
            let mut ctx = dpu.ctx(0);
            alloc.pim_malloc(&mut ctx, 64).unwrap();
        }
        means.push(alloc.alloc_stats().malloc_latencies.mean());
    }
    assert!(
        means[0] > means[1] && means[1] >= means[2],
        "expected straw-man > SW >= HW/SW, got {means:?}"
    );
}

/// Workspace-wiring guard: every metadata backend `pim_malloc` exposes
/// must construct and serve a round-trip on a default `DpuSim`. If a
/// manifest or feature change drops a backend's supporting code, this
/// test fails here rather than only in downstream binaries.
#[test]
fn every_backend_kind_constructs_on_default_sim() {
    let backends = [
        BackendKind::Coarse { buffer_bytes: 2048 },
        BackendKind::FineLru {
            entries: 64,
            granule_bytes: 64,
        },
        BackendKind::HwCache {
            cache: BuddyCacheConfig::default(),
        },
        BackendKind::LineCache {
            capacity_bytes: 4096,
            line_bytes: 64,
        },
    ];
    for backend in backends {
        let mut dpu = DpuSim::new(DpuConfig::default());
        let config = AllocGeometry::sw(dpu.config().n_tasklets)
            .with_backend(backend)
            .build();
        let mut alloc = PimMalloc::init(&mut dpu, config)
            .unwrap_or_else(|e| panic!("{backend:?} failed to init: {e}"));
        let mut ctx = dpu.ctx(0);
        let addr = alloc
            .pim_malloc(&mut ctx, 256)
            .unwrap_or_else(|e| panic!("{backend:?} failed to malloc: {e}"));
        alloc
            .pim_free(&mut ctx, addr)
            .unwrap_or_else(|e| panic!("{backend:?} failed to free: {e}"));
    }
}

#[test]
fn stats_are_consistent_with_operations() {
    let (mut dpu, mut alloc) = setup(AllocatorKind::Sw, 2);
    let mut addrs = Vec::new();
    for i in 0..40 {
        let mut ctx = dpu.ctx(i % 2);
        addrs.push((i % 2, alloc.pim_malloc(&mut ctx, 100).unwrap()));
    }
    assert_eq!(alloc.alloc_stats().total_mallocs(), 40);
    assert_eq!(alloc.alloc_stats().malloc_latencies.len(), 40);
    for (tid, addr) in addrs {
        let mut ctx = dpu.ctx(tid);
        alloc.pim_free(&mut ctx, addr).unwrap();
    }
    let s = alloc.alloc_stats();
    assert_eq!(s.frees_frontend + s.frees_backend, 40);
}
