//! End-to-end fault-injection contract: a fixed [`FaultPlan`] seed
//! must produce *byte-identical* serving reports across every
//! execution policy (and, via the CI matrix, every `PIM_EXEC_WORKERS`
//! setting) — fault draws are pure functions of the plan, never of
//! scheduling. A different fault seed must produce a different fault
//! trace, and a disabled plan must leave reports byte-identical to a
//! default context.

use pim_malloc::PimAllocator;
use pim_serving::{serve, ArrivalProcess, ServeConfig, ServeReport};
use pim_sim::{DpuSim, ExecPolicy, FaultPlan, SimContext, TransferDirection, TransferPlan};
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn base(faults: FaultPlan) -> ServeConfig {
    ServeConfig {
        n_dpus: 128,
        n_requests: 10_000,
        arrival: ArrivalProcess::Poisson { rps: 250_000.0 },
        ctx: SimContext::sweep_default().with_faults(faults),
        ..ServeConfig::default()
    }
}

fn chaotic_serve(exec: ExecPolicy, fault_seed: u64) -> ServeReport {
    let cfg = base(FaultPlan::chaos(fault_seed));
    let cfg = ServeConfig {
        ctx: cfg.ctx.with_exec(exec),
        ..cfg
    };
    serve(&cfg, &standard_mix(), &build)
}

#[test]
fn fault_plan_is_exec_policy_invariant() {
    // The whole point of the pure-function fault model: one seed, one
    // fault trace, regardless of how sweeps are scheduled.
    // (ServeReport derives PartialEq — f64 equality, not tolerance.)
    let reference = chaotic_serve(ExecPolicy::Serial, 0xFA11);
    assert!(
        reference.faults.doa_dpus > 0,
        "chaos on 128 DPUs must kill some at birth"
    );
    for policy in [
        ExecPolicy::Oblivious,
        ExecPolicy::Sticky,
        ExecPolicy::StickySteal,
    ] {
        assert_eq!(
            chaotic_serve(policy, 0xFA11),
            reference,
            "{policy:?} diverged under faults"
        );
    }
}

#[test]
fn fault_seed_changes_the_fault_trace() {
    let a = chaotic_serve(ExecPolicy::StickySteal, 1);
    let b = chaotic_serve(ExecPolicy::StickySteal, 2);
    assert_ne!(
        (a.faults.doa_dpus, a.faults.healthy_final, a.latency.p99),
        (b.faults.doa_dpus, b.faults.healthy_final, b.latency.p99),
        "different fault seeds must reshape the run"
    );
}

#[test]
fn disabled_faults_match_a_default_context() {
    // FaultPlan::none() must take zero fault paths: the report equals
    // one produced by a context that never heard of faults.
    let with_none = serve(&base(FaultPlan::none()), &standard_mix(), &build);
    let cfg = ServeConfig {
        ctx: SimContext::sweep_default(),
        ..base(FaultPlan::none())
    };
    let vanilla = serve(&cfg, &standard_mix(), &build);
    assert_eq!(with_none, vanilla);
    let f = &with_none.faults;
    assert_eq!(f.doa_dpus + f.killed_dpus + f.retries + f.redispatched, 0);
    assert_eq!(f.fault_drops(), 0);
}

#[test]
fn fault_accounting_closes_under_chaos() {
    let r = chaotic_serve(ExecPolicy::StickySteal, 0xFA11);
    assert_eq!(
        r.admitted + r.dropped,
        10_000,
        "every request completes or is attributed a drop"
    );
    assert_eq!(
        r.dropped,
        r.faults.drops_queue_full + r.faults.fault_drops(),
        "drop attribution must sum to the total"
    );
    assert_eq!(r.latency.count, r.admitted);
    assert_eq!(
        r.faults.healthy_timeline.len() as u64,
        1 + r.faults.killed_dpus,
        "one timeline point at t=0 plus one per kill"
    );
}

#[test]
fn transfer_faults_are_nonce_deterministic() {
    // The sharded transfer model prices the same plan identically for
    // the same (fault plan, nonce) and differently across nonces that
    // actually change a draw.
    let ctx = SimContext::sweep_default().with_faults(FaultPlan {
        seed: 9,
        xfer_fail_prob: 0.3,
        ..FaultPlan::none()
    });
    let planner = ctx.planner();
    let mut plan = TransferPlan::new(TransferDirection::HostToPim);
    for dpu in 0..256 {
        plan.push(dpu, 4096);
    }
    let a = planner.estimate_with_faults(&plan, &ctx.faults, 0);
    let b = planner.estimate_with_faults(&plan, &ctx.faults, 0);
    assert_eq!(a, b, "same nonce, same faults");
    let faulted = (0..64u64)
        .map(|nonce| planner.estimate_with_faults(&plan, &ctx.faults, nonce))
        .filter(|f| f.failed_shards > 0)
        .count();
    assert!(faulted > 0, "a 30% shard-fail prob must fire somewhere");
}
