//! End-to-end trace subsystem tests: a workload recorded as a trace,
//! round-tripped through JSON, and replayed on a fresh allocator must
//! reproduce the direct run's figure output byte for byte — across
//! allocator kinds, request patterns, and both execution engines.

use pim_sim::{DpuConfig, DpuSim};
use pim_trace::{replay, replay_fleet, AllocTrace, FleetConfig};
use pim_workloads::graph::{run_graph_update_recorded, GraphRepr, GraphUpdateConfig};
use pim_workloads::llm::{record_kv_trace, sharegpt_like_trace, LlmConfig};
use pim_workloads::micro::{run_micro, run_micro_recorded, MicroConfig, Pattern};
use pim_workloads::AllocatorKind;

/// Replays `trace` once on one fresh DPU with a fresh `kind` allocator.
fn replay_once(trace: &AllocTrace, kind: AllocatorKind) -> pim_trace::ReplayResult {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let mut alloc = kind.build(&mut dpu, trace.n_tasklets, trace.heap_size);
    replay(&mut dpu, alloc.as_mut(), trace)
}

#[test]
fn recorded_micro_matches_direct_figure_output() {
    for kind in [
        AllocatorKind::StrawMan,
        AllocatorKind::Sw,
        AllocatorKind::HwSw,
    ] {
        for pattern in [Pattern::AllocOnly, Pattern::AllocFreePairs] {
            let cfg = MicroConfig {
                n_tasklets: 16,
                allocs_per_tasklet: 32,
                pattern,
                ..MicroConfig::default()
            };
            // Recording must not perturb the benchmark itself...
            let direct = run_micro(kind, &cfg);
            let (recorded_result, trace) = run_micro_recorded(kind, &cfg);
            assert_eq!(direct.timeline_us, recorded_result.timeline_us);
            assert_eq!(direct.avg_latency_us, recorded_result.avg_latency_us);

            // ...and the trace — even after a JSON round-trip — must
            // replay to byte-identical latency results.
            let parsed = AllocTrace::from_json(&trace.to_json()).expect("round trip");
            assert_eq!(parsed, trace);
            let replayed = replay_once(&parsed, kind);
            let mhz = pim_sim::CostModel::default().clock_mhz;
            let replay_timeline: Vec<(f64, f64)> = replayed
                .timeline
                .iter()
                .map(|&(t, l)| (t.as_micros(mhz), l.as_micros(mhz)))
                .collect();
            assert_eq!(
                direct.timeline_us, replay_timeline,
                "{kind:?}/{pattern:?} replay diverged from the direct run"
            );
            assert_eq!(direct.finish_us, replayed.finish.as_micros(mhz));
        }
    }
}

#[test]
fn replaying_twice_is_byte_identical() {
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: 48,
        ..MicroConfig::default()
    };
    let (_, trace) = run_micro_recorded(AllocatorKind::Sw, &cfg);
    let a = replay_once(&trace, AllocatorKind::Sw);
    let b = replay_once(&trace, AllocatorKind::Sw);
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.finish, b.finish);
}

#[test]
fn serial_and_parallel_replay_agree_on_recorded_trace() {
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: 32,
        ..MicroConfig::default()
    };
    let (_, trace) = run_micro_recorded(AllocatorKind::Sw, &cfg);
    let fleet = |exec: pim_sim::ExecPolicy| {
        replay_fleet(
            &trace,
            &FleetConfig {
                n_dpus: 8,
                ctx: pim_sim::SimContext::default().with_exec(exec),
            },
            |dpu| AllocatorKind::Sw.build(dpu, trace.n_tasklets, trace.heap_size),
        )
    };
    let par = fleet(pim_sim::ExecPolicy::StickySteal);
    let ser = fleet(pim_sim::ExecPolicy::Serial);
    for (p, s) in par.per_dpu.iter().zip(&ser.per_dpu) {
        assert_eq!(p.timeline, s.timeline);
    }
    assert_eq!(par.kernel_finish, ser.kernel_finish);
}

#[test]
fn graph_and_llm_traces_replay_against_every_allocator() {
    // Traces recorded from one workload replay against *other*
    // allocator designs — the capture-once / replay-everywhere
    // contract of the subsystem.
    let graph_cfg = GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::Sw,
        n_dpus: 2,
        n_nodes: 1024,
        base_edges: 3200,
        new_edges: 1600,
        ctx: pim_sim::SimContext::default().with_seed(7),
        ..GraphUpdateConfig::default()
    };
    let (_, graph_trace) = run_graph_update_recorded(&graph_cfg);
    let llm_trace = record_kv_trace(
        AllocatorKind::Sw,
        &LlmConfig::default(),
        &sharegpt_like_trace(8, 10.0, 256, 3),
    );
    for trace in [&graph_trace, &llm_trace] {
        let parsed = AllocTrace::from_json(&trace.to_json()).expect("round trip");
        assert_eq!(&parsed, trace);
        for kind in [
            AllocatorKind::StrawMan,
            AllocatorKind::Sw,
            AllocatorKind::HwSw,
        ] {
            let r = replay_once(trace, kind);
            assert_eq!(
                r.malloc_latencies.len(),
                trace.malloc_count(),
                "{} on {kind:?}",
                trace.name
            );
            assert_eq!(r.oom_count, 0, "{} on {kind:?}", trace.name);
        }
    }
}
