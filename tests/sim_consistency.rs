//! Cross-crate consistency: the analytic design-space model, the DPU
//! simulator, and the allocator library must tell one coherent story —
//! and every multi-DPU engine (serial reference, parallel, and the
//! topology-aware executor policies) must produce identical simulated
//! results at paper scale (512 DPUs).

use pim_dse::{run_strategy, DseConfig, Strategy};
use pim_malloc::{PimAllocator, StrawManAllocator, StrawManConfig};
use pim_sim::{DpuConfig, DpuSim, ExecPolicy};

#[test]
fn dse_pim_local_time_matches_a_real_dpu_run() {
    // PIM-Metadata/PIM-Executed = launch overhead + the straw-man
    // batch measured on an actual DpuSim. Re-derive it independently.
    let cfg = DseConfig::default();
    let r = run_strategy(Strategy::PimMetaPimExec, &cfg);

    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let mut alloc = StrawManAllocator::init(&mut dpu, cfg.straw_man).expect("straw-man init");
    let t0 = dpu.clock(0);
    for _ in 0..cfg.allocs_per_dpu {
        let mut ctx = dpu.ctx(0);
        alloc.pim_malloc(&mut ctx, cfg.alloc_size).unwrap();
    }
    let batch_secs = (dpu.clock(0) - t0).as_secs(dpu.config().cost.clock_mhz);
    let expected = cfg.launch_us * 1e-6 + batch_secs;
    assert!(
        (r.total_secs - expected).abs() < 1e-9,
        "DSE {} vs independent {}",
        r.total_secs,
        expected
    );
}

#[test]
fn dse_crossover_matches_figure6() {
    // Below a handful of DPUs the host-executed strategy can win; by
    // 512 DPUs PIM-local execution wins by orders of magnitude.
    let small = DseConfig::default().with_dpus(1);
    let gray = run_strategy(Strategy::HostMetaHostExec, &small);
    let red = run_strategy(Strategy::PimMetaPimExec, &small);
    assert!(
        gray.total_secs < red.total_secs,
        "at 1 DPU the brawny host should beat one wimpy core"
    );
    let large = DseConfig::default().with_dpus(512);
    let gray = run_strategy(Strategy::HostMetaHostExec, &large);
    let red = run_strategy(Strategy::PimMetaPimExec, &large);
    assert!(red.total_secs * 10.0 < gray.total_secs);
}

#[test]
fn virtual_time_is_deterministic() {
    let run = || {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut alloc =
            StrawManAllocator::init(&mut dpu, StrawManConfig::default()).expect("straw-man init");
        for i in 0..128 {
            let mut ctx = dpu.ctx(i % 16);
            alloc
                .pim_malloc(&mut ctx, 32 + (i as u32 % 7) * 32)
                .unwrap();
        }
        (dpu.max_clock(), dpu.total_stats(), dpu.traffic())
    };
    assert_eq!(run(), run(), "two identical runs must agree exactly");
}

#[test]
fn wram_budget_is_shared_across_components() {
    // The straw-man buffer and PIM-malloc structures share one 64 KB
    // scratchpad: a second allocator on the same DPU must account for
    // the already-reserved space.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
    let before = dpu.wram().available_bytes();
    let _a = StrawManAllocator::init(&mut dpu, StrawManConfig::default()).expect("straw-man init");
    let after = dpu.wram().available_bytes();
    assert_eq!(before - after, 2048, "straw-man reserves its 2 KB window");
    // An allocator demanding more WRAM than remains must fail cleanly.
    let cfg = pim_malloc::AllocGeometry::sw(16)
        .with_backend(pim_malloc::BackendKind::Coarse {
            buffer_bytes: after.next_power_of_two(),
        })
        .build();
    assert!(matches!(
        pim_malloc::PimMalloc::init(&mut dpu, cfg),
        Err(pim_malloc::InitError::Wram(_))
    ));
}

/// The non-serial engines the 512-DPU equality tests pit against the
/// serial reference.
const PARALLEL_POLICIES: [ExecPolicy; 3] = [
    ExecPolicy::Oblivious,
    ExecPolicy::Sticky,
    ExecPolicy::StickySteal,
];

#[test]
fn graph_update_at_512_dpus_is_engine_invariant() {
    // The Figure 15/17-style graph update, partitioned over 512 DPUs:
    // serial == parallel == topology-aware, field for field.
    use pim_workloads::graph::{run_graph_update, GraphUpdateConfig, GraphUpdateResult};
    let cfg = |exec: ExecPolicy| GraphUpdateConfig {
        n_dpus: 512,
        n_nodes: 4096,
        base_edges: 16_000,
        new_edges: 16_000,
        ctx: pim_sim::SimContext::default().with_exec(exec),
        ..GraphUpdateConfig::default()
    };
    // Everything simulated; host_placement_secs is deliberately
    // excluded — it reflects the executor's cross-run ledger history,
    // not this run's DPU results.
    let key = |r: &GraphUpdateResult| {
        (
            r.update_secs.to_bits(),
            r.throughput_meps.to_bits(),
            r.alloc_timeline.clone(),
            r.per_tasklet_malloc_us.clone(),
            r.meta_bytes,
            r.dram_bytes,
            r.total_mallocs,
            r.frag_ratio.to_bits(),
            r.host_push_secs.to_bits(),
            r.host_xfer_calls,
        )
    };
    let reference = key(&run_graph_update(&cfg(ExecPolicy::Serial)));
    for policy in PARALLEL_POLICIES {
        assert_eq!(
            key(&run_graph_update(&cfg(policy))),
            reference,
            "{policy:?} diverged from the serial engine"
        );
    }
}

#[test]
fn llm_serving_at_512_dpus_is_engine_invariant() {
    // run_serving_many fans one share-nothing simulation per KV scheme
    // (each modeling the default 512-DPU PIM side); every policy must
    // reproduce the serial map exactly.
    use pim_workloads::llm::{
        fixed_trace, run_serving, run_serving_many, KvScheme, ServingConfig, ServingResult,
    };
    use pim_workloads::AllocatorKind;
    let schemes = [
        KvScheme::Static,
        KvScheme::Dynamic(AllocatorKind::StrawMan),
        KvScheme::Dynamic(AllocatorKind::Sw),
        KvScheme::Dynamic(AllocatorKind::HwSw),
    ];
    let trace = fixed_trace(40, 10.0);
    let base = ServingConfig::default();
    assert_eq!(base.llm.n_dpus, 512, "the paper's serving fleet");
    let key = |r: &ServingResult| {
        (
            r.throughput_tokens_per_s.to_bits(),
            r.tpot_p50_ms.to_bits(),
            r.tpot_p95_ms.to_bits(),
            r.tpot_p99_ms.to_bits(),
            r.peak_batch,
            r.makespan_s.to_bits(),
            r.kv_push_secs.to_bits(),
            r.kv_push_stall_secs.to_bits(),
            r.kv_push_calls,
        )
    };
    let reference: Vec<_> = schemes
        .iter()
        .map(|&s| key(&run_serving(s, &base, &trace)))
        .collect();
    for policy in PARALLEL_POLICIES {
        let cfg = ServingConfig {
            ctx: base.ctx.with_exec(policy),
            ..base
        };
        let results = run_serving_many(&schemes, &cfg, &trace);
        let got: Vec<_> = results.iter().map(key).collect();
        assert_eq!(got, reference, "{policy:?} diverged from the serial map");
    }
}

#[test]
fn trace_fleet_at_512_dpus_is_engine_invariant() {
    // replay_fleet over 512 share-nothing DPUs: per-DPU timelines and
    // the fleet aggregates must not depend on the engine.
    use pim_trace::{replay_fleet, synthesize, FleetConfig, SizeLaw, SynthConfig, TemporalShape};
    let trace = synthesize(&SynthConfig {
        n_tasklets: 4,
        mallocs_per_tasklet: 24,
        size_law: SizeLaw::Uniform { min: 16, max: 1024 },
        shape: TemporalShape::Steady { compute: 300 },
        heap_size: 1 << 20,
        seed: 7,
        ..SynthConfig::default()
    });
    let build = |dpu: &mut DpuSim| -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(4)
            .with_heap_size(1 << 20)
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    };
    let fleet = |exec: ExecPolicy| {
        replay_fleet(
            &trace,
            &FleetConfig {
                n_dpus: 512,
                ctx: pim_sim::SimContext::default().with_exec(exec),
            },
            build,
        )
    };
    let reference = fleet(ExecPolicy::Serial);
    for policy in PARALLEL_POLICIES {
        let got = fleet(policy);
        assert_eq!(got.per_dpu.len(), 512);
        for (g, r) in got.per_dpu.iter().zip(&reference.per_dpu) {
            assert_eq!(g.timeline, r.timeline, "{policy:?}");
            assert_eq!(g.oom_count, r.oom_count, "{policy:?}");
        }
        assert_eq!(got.kernel_finish, reference.kernel_finish, "{policy:?}");
        assert_eq!(got.mean_latency(), reference.mean_latency(), "{policy:?}");
        assert_eq!(got.distribution, reference.distribution, "{policy:?}");
    }
}

#[test]
fn page_frontend_fleet_at_512_dpus_is_engine_invariant() {
    // The same fleet replay with the PageLocal frontend: the page
    // path's intrusive-list surgery and frame-table routing must be as
    // engine-invariant as the legacy bitmap frontend — and land on the
    // *same addresses*, so the two fleets' timelines differ only in
    // cycle pricing.
    use pim_trace::{replay_fleet, synthesize, FleetConfig, SizeLaw, SynthConfig, TemporalShape};
    let trace = synthesize(&SynthConfig {
        n_tasklets: 4,
        mallocs_per_tasklet: 24,
        size_law: SizeLaw::Uniform { min: 16, max: 1024 },
        shape: TemporalShape::Steady { compute: 300 },
        heap_size: 1 << 20,
        seed: 7,
        ..SynthConfig::default()
    });
    let build = |dpu: &mut DpuSim| -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(4)
            .with_heap_size(1 << 20)
            .page_local()
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    };
    let fleet = |exec: ExecPolicy| {
        replay_fleet(
            &trace,
            &FleetConfig {
                n_dpus: 512,
                ctx: pim_sim::SimContext::default().with_exec(exec),
            },
            build,
        )
    };
    let reference = fleet(ExecPolicy::Serial);
    for policy in PARALLEL_POLICIES {
        let got = fleet(policy);
        assert_eq!(got.per_dpu.len(), 512);
        for (g, r) in got.per_dpu.iter().zip(&reference.per_dpu) {
            assert_eq!(g.timeline, r.timeline, "{policy:?}");
            assert_eq!(g.oom_count, r.oom_count, "{policy:?}");
        }
        assert_eq!(got.kernel_finish, reference.kernel_finish, "{policy:?}");
        assert_eq!(got.mean_latency(), reference.mean_latency(), "{policy:?}");
        assert_eq!(got.distribution, reference.distribution, "{policy:?}");
    }
}

#[test]
fn pipeline_sharing_slows_dense_multithreading() {
    // The same instruction stream takes longer per tasklet at 24
    // tasklets than at 11 (issue-slot sharing), but aggregate
    // throughput is preserved.
    let time_per_tasklet = |n: usize| {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n));
        for t in 0..n {
            dpu.ctx(t).instrs(1000);
        }
        dpu.max_clock()
    };
    let t11 = time_per_tasklet(11);
    let t24 = time_per_tasklet(24);
    assert_eq!(t11.0, 11 * 1000);
    assert_eq!(t24.0, 24 * 1000);
}
