//! Cross-crate consistency: the analytic design-space model, the DPU
//! simulator, and the allocator library must tell one coherent story.

use pim_dse::{run_strategy, DseConfig, Strategy};
use pim_malloc::{PimAllocator, StrawManAllocator, StrawManConfig};
use pim_sim::{DpuConfig, DpuSim};

#[test]
fn dse_pim_local_time_matches_a_real_dpu_run() {
    // PIM-Metadata/PIM-Executed = launch overhead + the straw-man
    // batch measured on an actual DpuSim. Re-derive it independently.
    let cfg = DseConfig::default();
    let r = run_strategy(Strategy::PimMetaPimExec, &cfg);

    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let mut alloc = StrawManAllocator::init(&mut dpu, cfg.straw_man);
    let t0 = dpu.clock(0);
    for _ in 0..cfg.allocs_per_dpu {
        let mut ctx = dpu.ctx(0);
        alloc.pim_malloc(&mut ctx, cfg.alloc_size).unwrap();
    }
    let batch_secs = (dpu.clock(0) - t0).as_secs(dpu.config().cost.clock_mhz);
    let expected = cfg.launch_us * 1e-6 + batch_secs;
    assert!(
        (r.total_secs - expected).abs() < 1e-9,
        "DSE {} vs independent {}",
        r.total_secs,
        expected
    );
}

#[test]
fn dse_crossover_matches_figure6() {
    // Below a handful of DPUs the host-executed strategy can win; by
    // 512 DPUs PIM-local execution wins by orders of magnitude.
    let small = DseConfig::default().with_dpus(1);
    let gray = run_strategy(Strategy::HostMetaHostExec, &small);
    let red = run_strategy(Strategy::PimMetaPimExec, &small);
    assert!(
        gray.total_secs < red.total_secs,
        "at 1 DPU the brawny host should beat one wimpy core"
    );
    let large = DseConfig::default().with_dpus(512);
    let gray = run_strategy(Strategy::HostMetaHostExec, &large);
    let red = run_strategy(Strategy::PimMetaPimExec, &large);
    assert!(red.total_secs * 10.0 < gray.total_secs);
}

#[test]
fn virtual_time_is_deterministic() {
    let run = || {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut alloc = StrawManAllocator::init(&mut dpu, StrawManConfig::default());
        for i in 0..128 {
            let mut ctx = dpu.ctx(i % 16);
            alloc
                .pim_malloc(&mut ctx, 32 + (i as u32 % 7) * 32)
                .unwrap();
        }
        (dpu.max_clock(), dpu.total_stats(), dpu.traffic())
    };
    assert_eq!(run(), run(), "two identical runs must agree exactly");
}

#[test]
fn wram_budget_is_shared_across_components() {
    // The straw-man buffer and PIM-malloc structures share one 64 KB
    // scratchpad: a second allocator on the same DPU must account for
    // the already-reserved space.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
    let before = dpu.wram().available_bytes();
    let _a = StrawManAllocator::init(&mut dpu, StrawManConfig::default());
    let after = dpu.wram().available_bytes();
    assert_eq!(before - after, 2048, "straw-man reserves its 2 KB window");
    // An allocator demanding more WRAM than remains must fail cleanly.
    let mut cfg = pim_malloc::PimMallocConfig::sw(16);
    cfg.backend = pim_malloc::BackendKind::Coarse {
        buffer_bytes: after.next_power_of_two(),
    };
    assert!(matches!(
        pim_malloc::PimMalloc::init(&mut dpu, cfg),
        Err(pim_malloc::InitError::Wram(_))
    ));
}

#[test]
fn pipeline_sharing_slows_dense_multithreading() {
    // The same instruction stream takes longer per tasklet at 24
    // tasklets than at 11 (issue-slot sharing), but aggregate
    // throughput is preserved.
    let time_per_tasklet = |n: usize| {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n));
        for t in 0..n {
            dpu.ctx(t).instrs(1000);
        }
        dpu.max_clock()
    };
    let t11 = time_per_tasklet(11);
    let t24 = time_per_tasklet(24);
    assert_eq!(t11.0, 11 * 1000);
    assert_eq!(t24.0, 24 * 1000);
}
