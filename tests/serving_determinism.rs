//! End-to-end serving-frontend contract: the open-loop report — tail
//! percentiles, drops, queue timeline, saturation knee — must be
//! byte-identical across every execution policy (and, via the CI
//! matrix, every `PIM_EXEC_WORKERS` setting), and its SLO metrics must
//! behave like a queueing system: ordered percentiles, drop-free light
//! load, load shedding past saturation.

use pim_malloc::PimAllocator;
use pim_serving::{saturation_sweep, serve, ArrivalProcess, ServeConfig};
use pim_sim::{DpuSim, ExecPolicy, SimContext};
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn base() -> ServeConfig {
    ServeConfig {
        n_dpus: 128,
        n_requests: 10_000,
        arrival: ArrivalProcess::Bursty {
            rps: 1.0, // rescaled per sweep point
            burst: 16,
        },
        // Tight enough that a 10k-request stream can overflow it: the
        // default 64-deep queues would buffer the whole test stream.
        queue_cap: 16,
        ctx: SimContext::sweep_default(),
        ..ServeConfig::default()
    }
}

#[test]
fn sweep_is_engine_invariant() {
    // The knee-finding sweep fans serve runs over the topology-aware
    // executor; every policy must reproduce the serial ladder exactly
    // (ServeReport derives PartialEq — f64 equality, not tolerance).
    let classes = standard_mix();
    let run = |exec: ExecPolicy| {
        let cfg = ServeConfig {
            ctx: base().ctx.with_exec(exec),
            ..base()
        };
        saturation_sweep(&cfg, &classes, &build, &[0.5, 1.0, 2.0])
    };
    let reference = run(ExecPolicy::Serial);
    for policy in [
        ExecPolicy::Oblivious,
        ExecPolicy::Sticky,
        ExecPolicy::StickySteal,
    ] {
        assert_eq!(run(policy), reference, "{policy:?} diverged");
    }
    assert!(reference.knee_rps > 0.0);
    assert!(reference.saturation_rps > 0.0);
}

#[test]
fn slo_metrics_behave_like_a_queue() {
    let classes = standard_mix();
    let sweep = saturation_sweep(&base(), &classes, &build, &[0.4, 3.0]);
    let light = &sweep.points[0].report;
    let heavy = &sweep.points[1].report;

    // Percentile ordering on a real report.
    for r in [light, heavy] {
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.p999);
        assert!(r.latency.p999 <= r.latency.max);
        assert_eq!(r.admitted + r.dropped, 10_000);
        assert_eq!(r.latency.count, r.admitted);
        assert!(!r.queue_depth.is_empty());
    }

    // Light load serves everything; 3x capacity sheds and saturates.
    assert_eq!(light.dropped, 0, "0.4x capacity must not shed");
    assert!(heavy.drop_frac() > 0.05, "3x capacity must shed");
    assert!(
        heavy.p99_ms() > light.p99_ms(),
        "overload inflates the tail"
    );
    assert!(
        heavy.achieved_rps < 0.95 * heavy.offered_rps,
        "achieved must fall behind offered past saturation"
    );
    assert!(heavy.peak_in_flight > light.peak_in_flight);
}

#[test]
fn arrival_shapes_share_the_mean_but_not_the_tail() {
    // Same mean rate, same fleet: burstier shapes queue deeper. The
    // mean-throughput story stays within a few percent across shapes.
    let classes = standard_mix();
    let cap = pim_serving::estimated_capacity_rps(&classes, &build, 128);
    let rate = 0.6 * cap;
    let run = |arrival| serve(&base().with_arrival(arrival), &classes, &build);
    let poisson = run(ArrivalProcess::Poisson { rps: rate });
    let bursty = run(ArrivalProcess::Bursty {
        rps: rate,
        burst: 64,
    });
    assert_eq!(poisson.dropped, 0);
    assert_eq!(bursty.dropped, 0);
    assert!(
        (poisson.achieved_rps - bursty.achieved_rps).abs() < 0.1 * rate,
        "same mean load: {} vs {}",
        poisson.achieved_rps,
        bursty.achieved_rps
    );
    assert!(
        bursty.peak_in_flight > poisson.peak_in_flight,
        "64-deep bursts must queue deeper than Poisson: {} vs {}",
        bursty.peak_in_flight,
        poisson.peak_in_flight
    );
}
