//! End-to-end dynamic-graph integration: workload generation, the
//! allocators, and the MRAM byte store must agree — every edge written
//! through the allocator is recoverable by walking pointers out of the
//! simulated memory image, under every allocator design.

use pim_sim::{DpuConfig, DpuSim};
use pim_workloads::graph::linked::LinkedListGraph;
use pim_workloads::graph::vararray::VarArrayGraph;
use pim_workloads::graph::{generate_power_law, run_graph_update, GraphRepr, GraphUpdateConfig};
use pim_workloads::AllocatorKind;

#[test]
fn linked_list_mram_image_is_exact_under_every_allocator() {
    for kind in [
        AllocatorKind::StrawMan,
        AllocatorKind::Sw,
        AllocatorKind::HwSw,
    ] {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(8));
        let mut alloc = kind.build(&mut dpu, 8, 32 << 20);
        let graph = generate_power_law(256, 2400, 21);
        let mut delta = LinkedListGraph::new(256);
        let mut expect = graph.edges.clone();
        for &(u, v) in &graph.edges {
            let mut ctx = dpu.ctx((u as usize) % 8);
            delta.insert(&mut ctx, alloc.as_mut(), u, v).unwrap();
        }
        let mut got = delta.read_back(dpu.mram());
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "{kind:?}: MRAM image diverged");
    }
}

#[test]
fn vararray_mram_image_survives_grow_copies() {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
    let mut alloc = AllocatorKind::HwSw.build(&mut dpu, 4, 32 << 20);
    // Heavily skewed graph: a few nodes grow through many doublings.
    let graph = generate_power_law(32, 3000, 5);
    let mut va = VarArrayGraph::new(32);
    let mut expect = Vec::new();
    for &(u, v) in &graph.edges {
        let mut ctx = dpu.ctx((u as usize) % 4);
        va.insert(&mut ctx, alloc.as_mut(), u, v).unwrap();
        expect.push((u, v));
    }
    assert!(
        va.grow_count() > 10,
        "want many grow-copies to stress free/copy"
    );
    let mut got = va.read_back(dpu.mram());
    got.sort_unstable();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn update_experiment_covers_every_new_edge() {
    // The per-DPU partition must neither drop nor duplicate edges: the
    // run reports exactly `new_edges` inserts worth of throughput.
    let cfg = GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::Sw,
        n_dpus: 4,
        n_tasklets: 8,
        n_nodes: 1024,
        base_edges: 3000,
        new_edges: 1500,
        ..GraphUpdateConfig::default()
    };
    let r = run_graph_update(&cfg);
    assert!(r.update_secs > 0.0);
    assert!(r.total_mallocs > 0);
    // Throughput × time = edges inserted.
    let edges = r.throughput_meps * 1e6 * r.update_secs;
    assert!((edges - 1500.0).abs() < 1.0, "edges accounted: {edges}");
}

#[test]
fn partitioning_is_deterministic_across_runs() {
    let cfg = GraphUpdateConfig {
        repr: GraphRepr::VarArray,
        allocator: AllocatorKind::Sw,
        n_dpus: 2,
        n_tasklets: 4,
        n_nodes: 512,
        base_edges: 1500,
        new_edges: 700,
        ..GraphUpdateConfig::default()
    };
    let a = run_graph_update(&cfg);
    let b = run_graph_update(&cfg);
    assert_eq!(
        a.update_secs, b.update_secs,
        "simulation must be deterministic"
    );
    assert_eq!(a.total_mallocs, b.total_mallocs);
    assert_eq!(a.meta_bytes, b.meta_bytes);
}

#[test]
fn figure17_orderings_hold_end_to_end() {
    let base = GraphUpdateConfig {
        n_dpus: 2,
        n_tasklets: 16,
        n_nodes: 1024,
        base_edges: 3200,
        new_edges: 1600,
        ..GraphUpdateConfig::default()
    };
    let stat = run_graph_update(&GraphUpdateConfig {
        repr: GraphRepr::StaticCsr,
        ..base
    });
    let straw = run_graph_update(&GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::StrawMan,
        ..base
    });
    let sw = run_graph_update(&GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::Sw,
        ..base
    });
    let hw = run_graph_update(&GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::HwSw,
        ..base
    });
    assert!(straw.throughput_meps < stat.throughput_meps);
    assert!(sw.throughput_meps > stat.throughput_meps);
    assert!(hw.throughput_meps >= sw.throughput_meps);
    // Straw-man time is dominated by busy-waiting (Figure 17(a)).
    let (_, busy, _, _) = straw.breakdown.fractions();
    assert!(busy > 0.5, "straw-man busy-wait fraction {busy}");
}
